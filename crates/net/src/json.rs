//! A self-describing JSON-ish debug format over the serde data model.
//!
//! This is the [`crate::codec::JsonCodec`] backend. Encoding rules:
//!
//! * structs → objects keyed by field name;
//! * enums → `{"$v": "VariantName"}` for unit variants, plus a `"$p"` key
//!   carrying the payload (value, array, or object) for data variants;
//! * sequences/tuples → arrays; options → `null` or the value; bytes →
//!   arrays of numbers; maps → objects (string keys only);
//! * `u64`/`i64` keep full precision (numbers are kept as text until a
//!   concrete integer type asks for them);
//! * non-finite floats are rejected — JSON has no spelling for them.
//!
//! The decoder parses to a value tree first, then drives serde visitors.
//! Named fields are reordered into declaration order before the visitor
//! runs, so the positional derives work unchanged; unknown or missing
//! fields are decode errors (drift is *supposed* to be loud in a debug
//! codec).

use serde::de::{self, DeserializeOwned, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;

/// Errors from the JSON debug format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

impl de::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

/// Serializes a value to JSON text bytes.
///
/// # Errors
///
/// Returns [`JsonError`] for non-finite floats and non-string map keys.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, JsonError> {
    let mut ser = JsonSerializer { out: String::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out.into_bytes())
}

/// Deserializes a value from JSON text bytes, requiring full consumption.
///
/// # Errors
///
/// Returns [`JsonError`] on syntax errors, type mismatches, unknown or
/// missing fields, or trailing input.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|_| JsonError("invalid utf-8".into()))?;
    let mut parser = Parser {
        input: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return err("trailing input after value");
    }
    T::deserialize(ValueDeserializer { value: &value })
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct JsonSerializer {
    out: String,
}

impl JsonSerializer {
    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn push_f64(&mut self, v: f64) -> Result<(), JsonError> {
        if !v.is_finite() {
            return err("JSON cannot represent a non-finite float");
        }
        self.out.push_str(&format!("{v:?}"));
        Ok(())
    }
}

/// Compound state: tracks whether a separator is needed, and closes the
/// aggregate on `end`.
enum Agg {
    Arr,
    Obj,
    /// Enum payload wrapper: closes both the payload aggregate and the
    /// variant object.
    VariantArr,
    VariantObj,
}

struct JsonCompound<'a> {
    ser: &'a mut JsonSerializer,
    agg: Agg,
    first: bool,
}

impl JsonCompound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }

    fn close(self) {
        match self.agg {
            Agg::Arr => self.ser.out.push(']'),
            Agg::Obj => self.ser.out.push('}'),
            Agg::VariantArr => self.ser.out.push_str("]}"),
            Agg::VariantObj => self.ser.out.push_str("}}"),
        }
    }
}

impl<'a> ser::Serializer for &'a mut JsonSerializer {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = JsonCompound<'a>;
    type SerializeTuple = JsonCompound<'a>;
    type SerializeTupleStruct = JsonCompound<'a>;
    type SerializeTupleVariant = JsonCompound<'a>;
    type SerializeMap = JsonCompound<'a>;
    type SerializeStruct = JsonCompound<'a>;
    type SerializeStructVariant = JsonCompound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.push_f64(f64::from(v))
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        self.push_f64(v)
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        self.push_escaped(&v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        self.push_escaped(v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        self.out.push('[');
        for (i, b) in v.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&b.to_string());
        }
        self.out.push(']');
        Ok(())
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        self.out.push_str("{\"$v\":");
        self.push_escaped(variant);
        self.out.push('}');
        Ok(())
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push_str("{\"$v\":");
        self.push_escaped(variant);
        self.out.push_str(",\"$p\":");
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonCompound<'a>, JsonError> {
        self.out.push('[');
        Ok(JsonCompound {
            ser: self,
            agg: Agg::Arr,
            first: true,
        })
    }
    fn serialize_tuple(self, _len: usize) -> Result<JsonCompound<'a>, JsonError> {
        self.serialize_seq(None)
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<JsonCompound<'a>, JsonError> {
        self.serialize_seq(None)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<JsonCompound<'a>, JsonError> {
        self.out.push_str("{\"$v\":");
        self.push_escaped(variant);
        self.out.push_str(",\"$p\":[");
        Ok(JsonCompound {
            ser: self,
            agg: Agg::VariantArr,
            first: true,
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<JsonCompound<'a>, JsonError> {
        self.out.push('{');
        Ok(JsonCompound {
            ser: self,
            agg: Agg::Obj,
            first: true,
        })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<JsonCompound<'a>, JsonError> {
        self.serialize_map(None)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<JsonCompound<'a>, JsonError> {
        self.out.push_str("{\"$v\":");
        self.push_escaped(variant);
        self.out.push_str(",\"$p\":{");
        Ok(JsonCompound {
            ser: self,
            agg: Agg::VariantObj,
            first: true,
        })
    }
}

impl ser::SerializeSeq for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.close();
        Ok(())
    }
}

impl ser::SerializeTuple for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.close();
        Ok(())
    }
}

impl ser::SerializeTupleStruct for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.close();
        Ok(())
    }
}

impl ser::SerializeTupleVariant for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.close();
        Ok(())
    }
}

impl ser::SerializeMap for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), JsonError> {
        self.sep();
        // Keys must render as JSON strings: serialize through a checker that
        // only accepts strings.
        let mut key_ser = KeySerializer { out: None };
        key.serialize(&mut key_ser)?;
        let key_text = key_ser
            .out
            .ok_or_else(|| JsonError("map key must be a string".into()))?;
        self.ser.push_escaped(&key_text);
        self.ser.out.push(':');
        Ok(())
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), JsonError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.close();
        Ok(())
    }
}

impl ser::SerializeStruct for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.sep();
        self.ser.push_escaped(key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.close();
        Ok(())
    }
}

impl ser::SerializeStructVariant for JsonCompound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.sep();
        self.ser.push_escaped(key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.close();
        Ok(())
    }
}

/// Serializer that only accepts strings (for map keys).
struct KeySerializer {
    out: Option<String>,
}

macro_rules! key_reject {
    ($($method:ident($ty:ty))*) => {$(
        fn $method(self, _v: $ty) -> Result<(), JsonError> {
            err("map key must be a string")
        }
    )*};
}

impl ser::Serializer for &mut KeySerializer {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = ser::Impossible<(), JsonError>;
    type SerializeTuple = ser::Impossible<(), JsonError>;
    type SerializeTupleStruct = ser::Impossible<(), JsonError>;
    type SerializeTupleVariant = ser::Impossible<(), JsonError>;
    type SerializeMap = ser::Impossible<(), JsonError>;
    type SerializeStruct = ser::Impossible<(), JsonError>;
    type SerializeStructVariant = ser::Impossible<(), JsonError>;

    key_reject! {
        serialize_bool(bool) serialize_i8(i8) serialize_i16(i16)
        serialize_i32(i32) serialize_i64(i64) serialize_u8(u8)
        serialize_u16(u16) serialize_u32(u32) serialize_u64(u64)
        serialize_f32(f32) serialize_f64(f64)
    }

    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        self.out = Some(v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        self.out = Some(v.to_owned());
        Ok(())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<(), JsonError> {
        err("map key must be a string")
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        err("map key must be a string")
    }
    fn serialize_some<T: ?Sized + Serialize>(self, _value: &T) -> Result<(), JsonError> {
        err("map key must be a string")
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        err("map key must be a string")
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        err("map key must be a string")
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        self.out = Some(variant.to_owned());
        Ok(())
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<(), JsonError> {
        err("map key must be a string")
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, JsonError> {
        err("map key must be a string")
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, JsonError> {
        err("map key must be a string")
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, JsonError> {
        err("map key must be a string")
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, JsonError> {
        err("map key must be a string")
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, JsonError> {
        err("map key must be a string")
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, JsonError> {
        err("map key must be a string")
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, JsonError> {
        err("map key must be a string")
    }
}

// ---------------------------------------------------------------------------
// Parser → value tree
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers stay textual until a concrete type asks, so
/// `u64::MAX` survives the trip.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Maximum container nesting the parser accepts — bounds recursion so a
/// hostile `[[[[…` payload errors instead of overflowing the stack.
const MAX_DEPTH: u32 = 128;

struct Parser<'i> {
    input: &'i [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.input
            .get(self.pos)
            .copied()
            .ok_or_else(|| JsonError("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => err(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            )),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, JsonError> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            err(format!("invalid keyword at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.input.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return err("empty number");
        }
        let Ok(text) = std::str::from_utf8(&self.input[start..self.pos]) else {
            return err("non-utf8 bytes in number");
        };
        // Validate it parses as *some* number now, so errors surface early.
        if text.parse::<f64>().is_err() {
            return err(format!("malformed number `{text}`"));
        }
        Ok(Value::Num(text.to_owned()))
    }

    fn parse_u_escape(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError("short \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| JsonError("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| JsonError("bad \\u escape".into()))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .input
                .get(self.pos)
                .copied()
                .ok_or_else(|| JsonError("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .input
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| JsonError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_u_escape()?;
                            // Standard JSON spells non-BMP characters as a
                            // surrogate pair of \u escapes; combine them.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.input.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return err("lone high surrogate");
                                }
                                self.pos += 2;
                                let low = self.parse_u_escape()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return err("invalid low surrogate");
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| JsonError("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("bad \\u code point".into()))?
                            };
                            out.push(c);
                        }
                        _ => return err("unknown escape"),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let s = &self.input[self.pos - 1..];
                    let width = utf8_width(b);
                    let chunk = s
                        .get(..width)
                        .ok_or_else(|| JsonError("truncated utf-8".into()))?;
                    let text = std::str::from_utf8(chunk)
                        .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                    out.push_str(text);
                    self.pos += width - 1;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return err("nesting too deep");
        }
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return err("nesting too deep");
        }
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Value tree → serde visitors
// ---------------------------------------------------------------------------

struct ValueDeserializer<'a> {
    value: &'a Value,
}

impl<'a> ValueDeserializer<'a> {
    fn mismatch<T>(&self, wanted: &str) -> Result<T, JsonError> {
        err(format!(
            "expected {wanted}, found {}",
            self.value.type_name()
        ))
    }

    fn num_text(&self, wanted: &str) -> Result<&'a str, JsonError> {
        match self.value {
            Value::Num(text) => Ok(text),
            _ => err(format!(
                "expected {wanted}, found {}",
                self.value.type_name()
            )),
        }
    }
}

macro_rules! de_int {
    ($($method:ident, $ty:ty, $visit:ident;)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
            let text = self.num_text(stringify!($ty))?;
            let v: $ty = text
                .parse()
                .map_err(|_| JsonError(format!("number `{text}` out of range for {}", stringify!($ty))))?;
            visitor.$visit(v)
        }
    )*};
}

impl<'de> de::Deserializer<'de> for ValueDeserializer<'_> {
    type Error = JsonError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(*b),
            Value::Num(text) => {
                if let Ok(v) = text.parse::<i64>() {
                    visitor.visit_i64(v)
                } else if let Ok(v) = text.parse::<u64>() {
                    visitor.visit_u64(v)
                } else {
                    match text.parse::<f64>() {
                        Ok(v) => visitor.visit_f64(v),
                        Err(_) => err(format!("malformed number `{text}`")),
                    }
                }
            }
            Value::Str(s) => visitor.visit_str(s),
            Value::Arr(_) => self.deserialize_seq(visitor),
            Value::Obj(_) => self.deserialize_map(visitor),
        }
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Bool(b) => visitor.visit_bool(*b),
            _ => self.mismatch("bool"),
        }
    }

    de_int! {
        deserialize_i8, i8, visit_i8;
        deserialize_i16, i16, visit_i16;
        deserialize_i32, i32, visit_i32;
        deserialize_i64, i64, visit_i64;
        deserialize_u8, u8, visit_u8;
        deserialize_u16, u16, visit_u16;
        deserialize_u32, u32, visit_u32;
        deserialize_u64, u64, visit_u64;
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        let text = self.num_text("f32")?;
        let Ok(v) = text.parse::<f32>() else {
            return err(format!("malformed number `{text}`"));
        };
        // `parse` saturates out-of-range finite text to infinity; the
        // format has no spelling for non-finite floats, so reject.
        if !v.is_finite() {
            return err(format!("number `{text}` out of range for f32"));
        }
        visitor.visit_f32(v)
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        let text = self.num_text("f64")?;
        match text.parse::<f64>() {
            Ok(v) => visitor.visit_f64(v),
            Err(_) => err(format!("malformed number `{text}`")),
        }
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        if let Value::Str(s) = self.value {
            let mut chars = s.chars();
            if let (Some(c), None) = (chars.next(), chars.next()) {
                return visitor.visit_char(c);
            }
        }
        self.mismatch("single-character string")
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Str(s) => visitor.visit_str(s),
            _ => self.mismatch("string"),
        }
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Arr(items) => {
                let mut bytes = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Num(text) => bytes.push(
                            text.parse::<u8>()
                                .map_err(|_| JsonError(format!("byte out of range: `{text}`")))?,
                        ),
                        other => return err(format!("expected byte, found {}", other.type_name())),
                    }
                }
                visitor.visit_byte_buf(bytes)
            }
            _ => self.mismatch("byte array"),
        }
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Null => visitor.visit_none(),
            _ => visitor.visit_some(self),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Null => visitor.visit_unit(),
            _ => self.mismatch("null"),
        }
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Arr(items) => visitor.visit_seq(SliceSeq { items, next: 0 }),
            _ => self.mismatch("array"),
        }
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Arr(items) if items.len() == len => {
                visitor.visit_seq(SliceSeq { items, next: 0 })
            }
            Value::Arr(items) => err(format!(
                "expected array of {len}, found {} elements",
                items.len()
            )),
            _ => self.mismatch("array"),
        }
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Obj(entries) => visitor.visit_map(ObjMap {
                entries,
                next: 0,
                value: None,
            }),
            _ => self.mismatch("object"),
        }
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        match self.value {
            // Reorder named fields into declaration order and drive the
            // positional visitor. Unknown and missing fields are errors.
            Value::Obj(entries) => {
                let mut ordered: Vec<&Value> = Vec::with_capacity(fields.len());
                for field in fields {
                    let mut matches = entries.iter().filter(|(k, _)| k == field);
                    let found = matches
                        .next()
                        .map(|(_, v)| v)
                        .ok_or_else(|| JsonError(format!("missing field `{field}`")))?;
                    if matches.next().is_some() {
                        return err(format!("duplicate field `{field}`"));
                    }
                    ordered.push(found);
                }
                if entries.len() != fields.len() {
                    for (k, _) in entries {
                        if !fields.contains(&k.as_str()) {
                            return err(format!("unknown field `{k}`"));
                        }
                    }
                }
                visitor.visit_seq(RefSeq {
                    items: ordered,
                    next: 0,
                })
            }
            // Positional arrays are accepted too (compat with captures).
            Value::Arr(items) if items.len() == fields.len() => {
                visitor.visit_seq(SliceSeq { items, next: 0 })
            }
            _ => self.mismatch("object"),
        }
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        match self.value {
            Value::Obj(entries) => {
                let variant_name = entries
                    .iter()
                    .find(|(k, _)| k == "$v")
                    .and_then(|(_, v)| match v {
                        Value::Str(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .ok_or_else(|| JsonError("enum object needs a string `$v` key".into()))?;
                let index = variants
                    .iter()
                    .position(|v| *v == variant_name)
                    .ok_or_else(|| JsonError(format!("unknown variant `{variant_name}`")))?;
                let payload = entries.iter().find(|(k, _)| k == "$p").map(|(_, v)| v);
                for (k, _) in entries {
                    if k != "$v" && k != "$p" {
                        return err(format!("unexpected key `{k}` in enum object"));
                    }
                }
                visitor.visit_enum(ValueEnum {
                    index: u32::try_from(index).expect("variant count fits u32"),
                    payload,
                })
            }
            _ => self.mismatch("enum object"),
        }
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        self.deserialize_any(visitor)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, JsonError> {
        visitor.visit_unit()
    }
}

struct SliceSeq<'a> {
    items: &'a [Value],
    next: usize,
}

impl<'de> de::SeqAccess<'de> for SliceSeq<'_> {
    type Error = JsonError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, JsonError> {
        match self.items.get(self.next) {
            None => Ok(None),
            Some(value) => {
                self.next += 1;
                seed.deserialize(ValueDeserializer { value }).map(Some)
            }
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.items.len() - self.next)
    }
}

struct RefSeq<'a> {
    items: Vec<&'a Value>,
    next: usize,
}

impl<'de> de::SeqAccess<'de> for RefSeq<'_> {
    type Error = JsonError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, JsonError> {
        match self.items.get(self.next) {
            None => Ok(None),
            Some(value) => {
                self.next += 1;
                seed.deserialize(ValueDeserializer { value }).map(Some)
            }
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.items.len() - self.next)
    }
}

struct ObjMap<'a> {
    entries: &'a [(String, Value)],
    next: usize,
    value: Option<&'a Value>,
}

impl<'de> de::MapAccess<'de> for ObjMap<'_> {
    type Error = JsonError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, JsonError> {
        match self.entries.get(self.next) {
            None => Ok(None),
            Some((key, value)) => {
                self.next += 1;
                self.value = Some(value);
                let key_value = Value::Str(key.clone());
                seed.deserialize(ValueDeserializer { value: &key_value })
                    .map(Some)
            }
        }
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, JsonError> {
        let value = self
            .value
            .take()
            .ok_or_else(|| JsonError("next_value_seed called before next_key_seed".into()))?;
        seed.deserialize(ValueDeserializer { value })
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.entries.len() - self.next)
    }
}

struct ValueEnum<'a> {
    index: u32,
    payload: Option<&'a Value>,
}

impl<'de> de::EnumAccess<'de> for ValueEnum<'_> {
    type Error = JsonError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), JsonError> {
        let index = self.index;
        let value = seed.deserialize(de::value::U32Deserializer::<JsonError>::new(index))?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for ValueEnum<'_> {
    type Error = JsonError;

    fn unit_variant(self) -> Result<(), JsonError> {
        match self.payload {
            None | Some(Value::Null) => Ok(()),
            Some(other) => err(format!(
                "unit variant carries unexpected {} payload",
                other.type_name()
            )),
        }
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, JsonError> {
        let value = self
            .payload
            .ok_or_else(|| JsonError("newtype variant missing `$p` payload".into()))?;
        seed.deserialize(ValueDeserializer { value })
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, JsonError> {
        let value = self
            .payload
            .ok_or_else(|| JsonError("tuple variant missing `$p` payload".into()))?;
        de::Deserializer::deserialize_tuple(ValueDeserializer { value }, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, JsonError> {
        let value = self
            .payload
            .ok_or_else(|| JsonError("struct variant missing `$p` payload".into()))?;
        de::Deserializer::deserialize_struct(ValueDeserializer { value }, "", fields, visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v, "json: {}", String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(-42i8);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(1.5f32);
        roundtrip(-0.123456789f64);
        roundtrip(1e300f64);
        roundtrip('λ');
        roundtrip(String::from("json \"escape\" \\ test\nline"));
        roundtrip(String::new());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![vec![1.0f64, 2.0], vec![]]);
        roundtrip((1u8, String::from("x"), 2.5f64));
        roundtrip(vec![Some(1u8), None, Some(3)]);
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), 1u64);
        m.insert(String::from("b"), 2u64);
        roundtrip(m);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        id: u64,
        name: String,
        values: Vec<f64>,
        flag: Option<bool>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Msg {
        Ping,
        Data { payload: Vec<u8>, crc: u32 },
        Pair(u8, u8),
        Wrapped(Nested),
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        roundtrip(Nested {
            id: 7,
            name: "party-3".into(),
            values: vec![0.1, 0.2],
            flag: Some(true),
        });
        roundtrip(Msg::Ping);
        roundtrip(Msg::Data {
            payload: vec![1, 2, 3],
            crc: 0xDEAD,
        });
        roundtrip(Msg::Pair(4, 5));
        roundtrip(Msg::Wrapped(Nested {
            id: 1,
            name: String::new(),
            values: vec![],
            flag: None,
        }));
    }

    #[test]
    fn field_order_is_flexible_but_names_are_strict() {
        let reordered = br#"{"name":"x","id":3,"flag":null,"values":[1.0]}"#;
        let v: Nested = from_bytes(reordered).unwrap();
        assert_eq!(v.id, 3);
        assert_eq!(v.values, vec![1.0]);

        let unknown = br#"{"name":"x","id":3,"flag":null,"values":[],"extra":1}"#;
        assert!(from_bytes::<Nested>(unknown).is_err());

        let missing = br#"{"name":"x","id":3}"#;
        assert!(from_bytes::<Nested>(missing).is_err());
    }

    #[test]
    fn adversarial_inputs_error_cleanly() {
        for bad in [
            &b"{"[..],
            b"[1,2",
            b"\"unterminated",
            b"{\"$v\":\"NoSuchVariant\"}",
            b"nulll",
            b"12.3.4",
            b"{\"$v\":3}",
            b"[1,2,]",
            b"",
        ] {
            assert!(
                from_bytes::<Msg>(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn deep_nesting_rejected_without_stack_overflow() {
        let bomb = vec![b'['; 100_000];
        assert!(from_bytes::<Vec<u8>>(&bomb).is_err());
        let obj_bomb = "{\"$p\":".repeat(50_000);
        assert!(from_bytes::<Vec<u8>>(obj_bomb.as_bytes()).is_err());
        // Nesting within the bound still parses.
        let ok: Vec<Vec<Vec<u8>>> = from_bytes(b"[[[1,2],[3]],[[4]]]").unwrap();
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Standard JSON encoding of an astral-plane character, as emitted
        // by serde_json / Python / JS.
        let v: String = from_bytes(br#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, "\u{1F600}");
        // Lone or malformed surrogates are errors.
        assert!(from_bytes::<String>(br#""\ud83d""#).is_err());
        assert!(from_bytes::<String>(br#""\ud83dx""#).is_err());
        assert!(from_bytes::<String>(br#""\ud83d\u0041""#).is_err());
        assert!(from_bytes::<String>(br#""\udc00""#).is_err());
    }

    #[test]
    fn duplicate_struct_field_rejected() {
        let dup = br#"{"id":1,"id":2,"name":"x","values":[],"flag":null}"#;
        let err = from_bytes::<Nested>(dup).unwrap_err();
        assert!(err.to_string().contains("duplicate field"), "{err}");
    }

    #[test]
    fn f32_out_of_range_rejected() {
        assert!(from_bytes::<f32>(b"1e300").is_err());
        assert_eq!(from_bytes::<f32>(b"1.5").unwrap(), 1.5f32);
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(to_bytes(&f64::NAN).is_err());
        assert!(to_bytes(&f64::INFINITY).is_err());
    }

    #[test]
    fn u64_precision_survives() {
        let v = u64::MAX - 1;
        let bytes = to_bytes(&v).unwrap();
        assert_eq!(from_bytes::<u64>(&bytes).unwrap(), v);
    }
}
