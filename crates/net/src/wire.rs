//! A compact varint binary serde codec — the format behind
//! [`crate::codec::WireCodec`], the default of the pluggable codec layer.
//!
//! The offline dependency set includes `serde` but no serde *format*
//! crate, so the wire format is implemented here: a non-self-describing
//! little-endian encoding in the spirit of `bincode`. Because the format
//! is non-self-describing, `deserialize_any` is unsupported — which is
//! fine for the derive-generated message types the protocol exchanges.
//!
//! # Wire format specification (value encoding v2, wire v4)
//!
//! This module specifies the *value encoding* (how a serde value becomes
//! bytes). The *envelope* those bytes travel in — chunked frames sealed
//! per direction, **wire format v4**: `session ‖ nonce ‖ ciphertext ‖
//! tag`, with the authenticated [`crate::transport::SessionId`] stamp
//! that multiplexes many sessions over one mesh — is specified in
//! [`crate::frame`]'s module docs.
//!
//! Encoding is generic over any [`std::io::Write`] sink, so values can be
//! serialized straight into a pooled socket buffer with no intermediate
//! `Vec` ([`to_writer`]); decoding reads from an in-memory cursor the
//! same way a `BufRead` front-end would hand out bytes. Nothing is
//! aligned or padded; values are concatenated in field/element order.
//!
//! Unsigned integers use **LEB128 varints** (7 value bits per byte,
//! little groups first, high bit = continuation, max 10 bytes for
//! `u64`); signed integers are **zigzag-mapped** (`(n << 1) ^ (n >> 63)`)
//! then varint-encoded so small negative values stay small on the wire.
//!
//! | data-model shape | encoding |
//! |---|---|
//! | `bool` | 1 byte: `0x00` false, `0x01` true (other values reject) |
//! | `u8`/`i8` | 1 raw byte |
//! | `u16`/`u32`/`u64`/`usize` | LEB128 varint |
//! | `i16`/`i32`/`i64`/`isize` | zigzag ‖ LEB128 varint |
//! | `f32`/`f64` | IEEE-754 bits, fixed-width LE |
//! | `char` | Unicode scalar as varint (invalid code points reject) |
//! | `str`/`String` | varint byte length ‖ UTF-8 bytes |
//! | bytes | varint length ‖ raw bytes |
//! | `Option<T>` | 1 byte tag (`0x00` none / `0x01` some) ‖ value if some |
//! | `()` / unit struct | zero bytes |
//! | sequence (`Vec`, slice) | varint element count ‖ elements |
//! | map | varint entry count ‖ (key ‖ value)\* |
//! | tuple / tuple struct / struct | fields in declaration order, no count |
//! | newtype struct | the inner value |
//! | enum variant | varint variant index ‖ payload (if any) |
//!
//! Decoding requires the input to be **fully consumed**; trailing bytes
//! are an error ([`WireError::TrailingBytes`]), truncated input is
//! [`WireError::UnexpectedEof`], and a varint that overflows its target
//! width rejects. This makes the format suitable for the framing layer's
//! length-delimited chunks: any split or corruption is caught at the
//! first decode.
//!
//! # Example
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Ping { seq: u64, note: String }
//!
//! let msg = Ping { seq: 7, note: "hello".into() };
//! let bytes = sap_net::wire::to_bytes(&msg).unwrap();
//! assert_eq!(bytes.len(), 1 + 1 + 5); // varint seq ‖ varint len ‖ "hello"
//! let back: Ping = sap_net::wire::from_bytes(&bytes).unwrap();
//! assert_eq!(back, msg);
//! ```

use serde::de::{self, DeserializeOwned, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;
use std::io::Write;

/// Errors produced by the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Custom message from serde.
    Message(String),
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Trailing bytes after a complete value.
    TrailingBytes,
    /// An invalid encoding was encountered (bad bool/option tag, bad UTF-8,
    /// bad char, varint overflow).
    InvalidEncoding(&'static str),
    /// The format is non-self-describing; `deserialize_any` is unsupported.
    NotSelfDescribing,
    /// Sequences must know their length up front.
    UnknownLength,
    /// The output sink reported an I/O error (impossible for in-memory
    /// buffers; surfaces when encoding straight into a writer).
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Message(m) => write!(f, "{m}"),
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::InvalidEncoding(what) => write!(f, "invalid encoding: {what}"),
            WireError::NotSelfDescribing => {
                write!(f, "wire format is not self-describing (deserialize_any)")
            }
            WireError::UnknownLength => write!(f, "sequence length must be known"),
            WireError::Io(m) => write!(f, "sink error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Varint primitives (shared with the framing layer and exercised directly
// by the property tests).
// ---------------------------------------------------------------------------

/// Maximum encoded size of a `u64` LEB128 varint.
pub const MAX_UVARINT_LEN: usize = 10;

/// Appends the LEB128 varint encoding of `v` to any `Write` sink.
///
/// # Errors
///
/// Propagates the sink's I/O error (infallible for `Vec<u8>`).
pub fn write_uvarint<W: Write>(out: &mut W, mut v: u64) -> std::io::Result<()> {
    let mut buf = [0u8; MAX_UVARINT_LEN];
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            n += 1;
            break;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
    out.write_all(&buf[..n])
}

/// Appends the LEB128 varint encoding of `v` to a byte vector — the
/// infallible convenience form of [`write_uvarint`] the framing layer
/// uses when packing headers into pooled buffers.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_uvarint`] emits for `v`.
pub fn uvarint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Reads a LEB128 varint from the front of `input`, advancing it past the
/// consumed bytes.
///
/// # Errors
///
/// [`WireError::UnexpectedEof`] when the input ends mid-varint;
/// [`WireError::InvalidEncoding`] when the value overflows 64 bits.
pub fn read_uvarint(input: &mut &[u8]) -> Result<u64, WireError> {
    let mut v = 0u64;
    for i in 0..MAX_UVARINT_LEN {
        let Some(&byte) = input.get(i) else {
            return Err(WireError::UnexpectedEof);
        };
        if i == MAX_UVARINT_LEN - 1 && byte > 1 {
            // Tenth byte may only carry bit 63 and no continuation.
            return Err(WireError::InvalidEncoding("varint overflow"));
        }
        v |= u64::from(byte & 0x7F) << (7 * i);
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Ok(v);
        }
    }
    Err(WireError::InvalidEncoding("varint too long"))
}

/// Zigzag-maps a signed integer so small magnitudes (either sign) become
/// small unsigned varints: 0 → 0, -1 → 1, 1 → 2, -2 → 3, …
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Serializes a value to a fresh byte vector.
///
/// # Errors
///
/// Returns [`WireError`] for unserializable values (e.g. sequences of
/// unknown length).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    to_writer(value, &mut out)?;
    Ok(out)
}

/// Serializes a value straight into any `Write` sink — a pooled frame
/// buffer, a socket buffer, a hasher — with no intermediate allocation.
///
/// # Errors
///
/// Returns [`WireError`] for unserializable values or sink I/O failures.
pub fn to_writer<T: Serialize, W: Write>(value: &T, out: &mut W) -> Result<(), WireError> {
    let mut ser = WireSerializer { out };
    value.serialize(&mut ser)
}

/// Deserializes a value from bytes, requiring the input to be fully
/// consumed.
///
/// # Errors
///
/// Returns [`WireError`] on malformed or trailing input.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut de = WireDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

struct WireSerializer<'w, W: Write> {
    out: &'w mut W,
}

impl<W: Write> WireSerializer<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.out.write_all(bytes)?;
        Ok(())
    }

    fn put_uvarint(&mut self, v: u64) -> Result<(), WireError> {
        write_uvarint(self.out, v)?;
        Ok(())
    }
}

impl<'a, 'w, W: Write> ser::Serializer for &'a mut WireSerializer<'w, W> {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Compound<'a, 'w, W>;
    type SerializeTuple = Compound<'a, 'w, W>;
    type SerializeTupleStruct = Compound<'a, 'w, W>;
    type SerializeTupleVariant = Compound<'a, 'w, W>;
    type SerializeMap = Compound<'a, 'w, W>;
    type SerializeStruct = Compound<'a, 'w, W>;
    type SerializeStructVariant = Compound<'a, 'w, W>;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.put(&[u8::from(v)])
    }
    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.put_uvarint(zigzag(i64::from(v)))
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.put_uvarint(zigzag(i64::from(v)))
    }
    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.put_uvarint(zigzag(v))
    }
    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.put(&[v])
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.put_uvarint(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.put_uvarint(u64::from(v))
    }
    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.put_uvarint(v)
    }
    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.put(&v.to_le_bytes())
    }
    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.put_uvarint(u64::from(u32::from(v)))
    }
    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_uvarint(v.len() as u64)?;
        self.put(v.as_bytes())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_uvarint(v.len() as u64)?;
        self.put(v)
    }
    fn serialize_none(self) -> Result<(), WireError> {
        self.put(&[0])
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), WireError> {
        self.put(&[1])?;
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.put_uvarint(u64::from(variant_index))
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.put_uvarint(u64::from(variant_index))?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a, 'w, W>, WireError> {
        let len = len.ok_or(WireError::UnknownLength)?;
        self.put_uvarint(len as u64)?;
        Ok(Compound { ser: self })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a, 'w, W>, WireError> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'w, W>, WireError> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'w, W>, WireError> {
        self.put_uvarint(u64::from(variant_index))?;
        Ok(Compound { ser: self })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a, 'w, W>, WireError> {
        let len = len.ok_or(WireError::UnknownLength)?;
        self.put_uvarint(len as u64)?;
        Ok(Compound { ser: self })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'w, W>, WireError> {
        Ok(Compound { ser: self })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a, 'w, W>, WireError> {
        self.put_uvarint(u64::from(variant_index))?;
        Ok(Compound { ser: self })
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Compound serializer shared by all length-known aggregates.
pub struct Compound<'a, 'w, W: Write> {
    ser: &'a mut WireSerializer<'w, W>,
}

macro_rules! impl_compound {
    ($trait:ident, $method:ident) => {
        impl<W: Write> ser::$trait for Compound<'_, '_, W> {
            type Ok = ();
            type Error = WireError;
            fn $method<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
                value.serialize(&mut *self.ser)
            }
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeSeq, serialize_element);
impl_compound!(SerializeTuple, serialize_element);
impl_compound!(SerializeTupleStruct, serialize_field);
impl_compound!(SerializeTupleVariant, serialize_field);

impl<W: Write> ser::SerializeMap for Compound<'_, '_, W> {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<W: Write> ser::SerializeStruct for Compound<'_, '_, W> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<W: Write> ser::SerializeStructVariant for Compound<'_, '_, W> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

/// In-memory byte cursor the deserializer reads from — the `BufRead`-style
/// counterpart of the `Write` sink: `take` hands out a filled view and
/// consumes it in one step.
struct WireDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> WireDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn get_uvarint(&mut self) -> Result<u64, WireError> {
        read_uvarint(&mut self.input)
    }

    fn get_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_uvarint()?;
        usize::try_from(len).map_err(|_| WireError::InvalidEncoding("length overflow"))
    }
}

macro_rules! de_fixed {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let raw = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(raw.try_into().expect("fixed width")))
        }
    };
}

macro_rules! de_uvarint {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let v = self.get_uvarint()?;
            let v = <$ty>::try_from(v).map_err(|_| WireError::InvalidEncoding("varint range"))?;
            visitor.$visit(v)
        }
    };
}

macro_rules! de_ivarint {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let v = unzigzag(self.get_uvarint()?);
            let v = <$ty>::try_from(v).map_err(|_| WireError::InvalidEncoding("varint range"))?;
            visitor.$visit(v)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut WireDeserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            _ => Err(WireError::InvalidEncoding("bool tag")),
        }
    }

    de_fixed!(deserialize_i8, visit_i8, i8, 1);
    de_ivarint!(deserialize_i16, visit_i16, i16);
    de_ivarint!(deserialize_i32, visit_i32, i32);
    de_uvarint!(deserialize_u16, visit_u16, u16);
    de_uvarint!(deserialize_u32, visit_u32, u32);
    de_fixed!(deserialize_f32, visit_f32, f32, 4);
    de_fixed!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i64(unzigzag(self.get_uvarint()?))
    }

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let v = self.get_uvarint()?;
        visitor.visit_u64(v)
    }

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(self.take(1)?[0])
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let code = self.get_uvarint()?;
        let code = u32::try_from(code).map_err(|_| WireError::InvalidEncoding("char"))?;
        let c = char::from_u32(code).ok_or(WireError::InvalidEncoding("char"))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        let raw = self.take(len)?;
        let s = std::str::from_utf8(raw).map_err(|_| WireError::InvalidEncoding("utf-8"))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            _ => Err(WireError::InvalidEncoding("option tag")),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumReader { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumReader<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumReader<'_, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let raw = self.de.get_uvarint()?;
        let index = u32::try_from(raw).map_err(|_| WireError::InvalidEncoding("variant index"))?;
        let value = seed.deserialize(de::value::U32Deserializer::<WireError>::new(index))?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumReader<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(-42i8);
        roundtrip(12345i16);
        roundtrip(-7_000_000i32);
        roundtrip(9_007_199_254_740_993i64);
        roundtrip(255u8);
        roundtrip(65535u16);
        roundtrip(4_000_000_000u32);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(1.5f32);
        roundtrip(-0.123456789f64);
        roundtrip('λ');
        roundtrip(String::from("hello, wire"));
        roundtrip(String::new());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![vec![1.0f64, 2.0], vec![]]);
        roundtrip((1u8, String::from("x"), 2.5f64));
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), 1u64);
        m.insert(String::from("b"), 2u64);
        roundtrip(m);
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(99u32));
        roundtrip(Some(String::from("inner")));
        roundtrip(vec![Some(1u8), None, Some(3)]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        id: u64,
        name: String,
        values: Vec<f64>,
        flag: Option<bool>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Msg {
        Ping,
        Data { payload: Vec<u8>, crc: u32 },
        Pair(u8, u8),
        Wrapped(Nested),
    }

    #[test]
    fn structs_roundtrip() {
        roundtrip(Nested {
            id: 7,
            name: "party-3".into(),
            values: vec![0.1, 0.2],
            flag: Some(true),
        });
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Msg::Ping);
        roundtrip(Msg::Data {
            payload: vec![1, 2, 3],
            crc: 0xDEAD,
        });
        roundtrip(Msg::Pair(4, 5));
        roundtrip(Msg::Wrapped(Nested {
            id: 1,
            name: String::new(),
            values: vec![],
            flag: None,
        }));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&u64::MAX).unwrap();
        assert_eq!(bytes.len(), 10);
        let short = &bytes[..4];
        assert_eq!(
            from_bytes::<u64>(short).unwrap_err(),
            WireError::UnexpectedEof
        );
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        assert_eq!(
            from_bytes::<u8>(&bytes).unwrap_err(),
            WireError::TrailingBytes
        );
    }

    #[test]
    fn bad_bool_tag_errors() {
        assert!(matches!(
            from_bytes::<bool>(&[7]).unwrap_err(),
            WireError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn bad_utf8_errors() {
        let bytes = vec![2u8, 0xFF, 0xFE];
        assert!(matches!(
            from_bytes::<String>(&bytes).unwrap_err(),
            WireError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn encoding_is_compact() {
        // Small unsigned ints are a single byte; a 3-element vec of u8 is
        // 1 (varint len) + 3; floats stay fixed width.
        assert_eq!(to_bytes(&0u64).unwrap().len(), 1);
        assert_eq!(to_bytes(&127u64).unwrap().len(), 1);
        assert_eq!(to_bytes(&128u64).unwrap().len(), 2);
        assert_eq!(to_bytes(&vec![1u8, 2, 3]).unwrap().len(), 4);
        assert_eq!(to_bytes(&1.0f64).unwrap().len(), 8);
        assert_eq!(to_bytes(&-1i64).unwrap().len(), 1);
    }

    #[test]
    fn varint_boundaries() {
        for (v, len) in [
            (0u64, 1),
            (127, 1),
            (128, 2),
            ((1 << 14) - 1, 2),
            (1 << 14, 3),
            (u64::MAX, 10),
        ] {
            let mut out = Vec::new();
            write_uvarint(&mut out, v).unwrap();
            assert_eq!(out.len(), len, "encoded length of {v}");
            assert_eq!(uvarint_len(v), len, "uvarint_len of {v}");
            let mut input = out.as_slice();
            assert_eq!(read_uvarint(&mut input).unwrap(), v);
            assert!(input.is_empty());
            let mut put = Vec::new();
            put_uvarint(&mut put, v);
            assert_eq!(put, out, "put_uvarint parity for {v}");
        }
    }

    #[test]
    fn varint_overflow_rejects() {
        // 11 continuation bytes: too long.
        let long = [0x80u8; 11];
        assert!(matches!(
            read_uvarint(&mut &long[..]).unwrap_err(),
            WireError::InvalidEncoding(_)
        ));
        // Tenth byte carrying more than bit 63: overflow.
        let mut over = [0x80u8; 10];
        over[9] = 0x02;
        assert!(matches!(
            read_uvarint(&mut &over[..]).unwrap_err(),
            WireError::InvalidEncoding(_)
        ));
        // Truncated mid-varint: EOF.
        let cut = [0x80u8; 3];
        assert_eq!(
            read_uvarint(&mut &cut[..]).unwrap_err(),
            WireError::UnexpectedEof
        );
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [0i64, -1, 1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn to_writer_matches_to_bytes() {
        let value = Nested {
            id: 300,
            name: "sink".into(),
            values: vec![1.0, 2.0, 3.0],
            flag: None,
        };
        let mut sink = Vec::with_capacity(64);
        to_writer(&value, &mut sink).unwrap();
        assert_eq!(sink, to_bytes(&value).unwrap());
    }
}
