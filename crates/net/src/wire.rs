//! A compact binary serde codec — the format behind
//! [`crate::codec::WireCodec`], the default of the pluggable codec layer.
//!
//! The offline dependency set includes `serde` but no serde *format*
//! crate, so the wire format is implemented here: a non-self-describing
//! little-endian encoding in the spirit of `bincode`. Because the format
//! is non-self-describing, `deserialize_any` is unsupported — which is
//! fine for the derive-generated message types the protocol exchanges.
//!
//! # Wire format specification
//!
//! This module specifies the *value encoding* (how a serde value becomes
//! bytes). The *envelope* those bytes travel in — chunked frames sealed
//! per direction, **wire format v3**: `session ‖ nonce ‖ ciphertext ‖
//! tag`, with the authenticated [`crate::transport::SessionId`] stamp
//! that multiplexes many sessions over one mesh — is specified in
//! [`crate::frame`]'s module docs.
//!
//! All multi-byte values are **little-endian**. Nothing is aligned or
//! padded; values are concatenated in field/element order.
//!
//! | data-model shape | encoding |
//! |---|---|
//! | `bool` | 1 byte: `0x00` false, `0x01` true (other values reject) |
//! | `u8`/`i8` … `u64`/`i64` | fixed-width LE, no varint |
//! | `usize`/`isize` | as `u64`/`i64` |
//! | `f32`/`f64` | IEEE-754 bits, LE |
//! | `char` | Unicode scalar as `u32` (invalid code points reject) |
//! | `str`/`String` | `u64` byte length ‖ UTF-8 bytes |
//! | bytes | `u64` length ‖ raw bytes |
//! | `Option<T>` | 1 byte tag (`0x00` none / `0x01` some) ‖ value if some |
//! | `()` / unit struct | zero bytes |
//! | sequence (`Vec`, slice) | `u64` element count ‖ elements |
//! | map | `u64` entry count ‖ (key ‖ value)\* |
//! | tuple / tuple struct / struct | fields in declaration order, no count |
//! | newtype struct | the inner value |
//! | enum variant | `u32` variant index ‖ payload (if any) |
//!
//! Decoding requires the input to be **fully consumed**; trailing bytes are
//! an error ([`WireError::TrailingBytes`]), truncated input is
//! [`WireError::UnexpectedEof`]. This makes the format suitable for the
//! framing layer's length-delimited chunks: any split or corruption is
//! caught at the first decode.
//!
//! # Example
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Ping { seq: u64, note: String }
//!
//! let msg = Ping { seq: 7, note: "hello".into() };
//! let bytes = sap_net::wire::to_bytes(&msg).unwrap();
//! let back: Ping = sap_net::wire::from_bytes(&bytes).unwrap();
//! assert_eq!(back, msg);
//! ```

use serde::de::{self, DeserializeOwned, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;

/// Errors produced by the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Custom message from serde.
    Message(String),
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Trailing bytes after a complete value.
    TrailingBytes,
    /// An invalid encoding was encountered (bad bool/option tag, bad UTF-8,
    /// bad char).
    InvalidEncoding(&'static str),
    /// The format is non-self-describing; `deserialize_any` is unsupported.
    NotSelfDescribing,
    /// Sequences must know their length up front.
    UnknownLength,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Message(m) => write!(f, "{m}"),
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::InvalidEncoding(what) => write!(f, "invalid encoding: {what}"),
            WireError::NotSelfDescribing => {
                write!(f, "wire format is not self-describing (deserialize_any)")
            }
            WireError::UnknownLength => write!(f, "sequence length must be known"),
        }
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

/// Serializes a value to bytes.
///
/// # Errors
///
/// Returns [`WireError`] for unserializable values (e.g. sequences of
/// unknown length).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut ser = WireSerializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserializes a value from bytes, requiring the input to be fully
/// consumed.
///
/// # Errors
///
/// Returns [`WireError`] on malformed or trailing input.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut de = WireDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

struct WireSerializer {
    out: Vec<u8>,
}

impl WireSerializer {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl<'a> ser::Serializer for &'a mut WireSerializer {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.push(u8::from(v));
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), WireError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), WireError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, WireError> {
        let len = len.ok_or(WireError::UnknownLength)?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, WireError> {
        let len = len.ok_or(WireError::UnknownLength)?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Compound serializer shared by all length-known aggregates.
pub struct Compound<'a> {
    ser: &'a mut WireSerializer,
}

macro_rules! impl_compound {
    ($trait:ident, $method:ident) => {
        impl<'a> ser::$trait for Compound<'a> {
            type Ok = ();
            type Error = WireError;
            fn $method<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
                value.serialize(&mut *self.ser)
            }
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeSeq, serialize_element);
impl_compound!(SerializeTuple, serialize_element);
impl_compound!(SerializeTupleStruct, serialize_field);
impl_compound!(SerializeTupleVariant, serialize_field);

impl<'a> ser::SerializeMap for Compound<'a> {
    type Ok = ();
    type Error = WireError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'a> ser::SerializeStruct for Compound<'a> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'a> ser::SerializeStructVariant for Compound<'a> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

struct WireDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> WireDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn get_len(&mut self) -> Result<usize, WireError> {
        let raw = self.take(8)?;
        let len = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
        usize::try_from(len).map_err(|_| WireError::InvalidEncoding("length overflow"))
    }
}

macro_rules! de_fixed {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let raw = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(raw.try_into().expect("fixed width")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut WireDeserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            _ => Err(WireError::InvalidEncoding("bool tag")),
        }
    }

    de_fixed!(deserialize_i8, visit_i8, i8, 1);
    de_fixed!(deserialize_i16, visit_i16, i16, 2);
    de_fixed!(deserialize_i32, visit_i32, i32, 4);
    de_fixed!(deserialize_i64, visit_i64, i64, 8);
    de_fixed!(deserialize_u16, visit_u16, u16, 2);
    de_fixed!(deserialize_u32, visit_u32, u32, 4);
    de_fixed!(deserialize_u64, visit_u64, u64, 8);
    de_fixed!(deserialize_f32, visit_f32, f32, 4);
    de_fixed!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(self.take(1)?[0])
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let raw = self.take(4)?;
        let code = u32::from_le_bytes(raw.try_into().expect("4 bytes"));
        let c = char::from_u32(code).ok_or(WireError::InvalidEncoding("char"))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        let raw = self.take(len)?;
        let s = std::str::from_utf8(raw).map_err(|_| WireError::InvalidEncoding("utf-8"))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            _ => Err(WireError::InvalidEncoding("option tag")),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumReader { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = WireError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumReader<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumReader<'a, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let raw = self.de.take(4)?;
        let index = u32::from_le_bytes(raw.try_into().expect("4 bytes"));
        let value = seed.deserialize(de::value::U32Deserializer::<WireError>::new(index))?;
        Ok((value, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumReader<'a, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(-42i8);
        roundtrip(12345i16);
        roundtrip(-7_000_000i32);
        roundtrip(9_007_199_254_740_993i64);
        roundtrip(255u8);
        roundtrip(65535u16);
        roundtrip(4_000_000_000u32);
        roundtrip(u64::MAX);
        roundtrip(1.5f32);
        roundtrip(-0.123456789f64);
        roundtrip('λ');
        roundtrip(String::from("hello, wire"));
        roundtrip(String::new());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![vec![1.0f64, 2.0], vec![]]);
        roundtrip((1u8, String::from("x"), 2.5f64));
        let mut m = BTreeMap::new();
        m.insert(String::from("a"), 1u64);
        m.insert(String::from("b"), 2u64);
        roundtrip(m);
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(99u32));
        roundtrip(Some(String::from("inner")));
        roundtrip(vec![Some(1u8), None, Some(3)]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        id: u64,
        name: String,
        values: Vec<f64>,
        flag: Option<bool>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Msg {
        Ping,
        Data { payload: Vec<u8>, crc: u32 },
        Pair(u8, u8),
        Wrapped(Nested),
    }

    #[test]
    fn structs_roundtrip() {
        roundtrip(Nested {
            id: 7,
            name: "party-3".into(),
            values: vec![0.1, 0.2],
            flag: Some(true),
        });
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Msg::Ping);
        roundtrip(Msg::Data {
            payload: vec![1, 2, 3],
            crc: 0xDEAD,
        });
        roundtrip(Msg::Pair(4, 5));
        roundtrip(Msg::Wrapped(Nested {
            id: 1,
            name: String::new(),
            values: vec![],
            flag: None,
        }));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&12345u64).unwrap();
        let short = &bytes[..4];
        assert_eq!(
            from_bytes::<u64>(short).unwrap_err(),
            WireError::UnexpectedEof
        );
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        assert_eq!(
            from_bytes::<u8>(&bytes).unwrap_err(),
            WireError::TrailingBytes
        );
    }

    #[test]
    fn bad_bool_tag_errors() {
        assert!(matches!(
            from_bytes::<bool>(&[7]).unwrap_err(),
            WireError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn bad_utf8_errors() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            from_bytes::<String>(&bytes).unwrap_err(),
            WireError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn encoding_is_compact() {
        // u64 is exactly 8 bytes; a 3-element vec of u8 is 8 (len) + 3.
        assert_eq!(to_bytes(&0u64).unwrap().len(), 8);
        assert_eq!(to_bytes(&vec![1u8, 2, 3]).unwrap().len(), 11);
    }
}
