//! Chunked streaming frames — the unit every transport actually carries.
//!
//! A logical message no longer travels as one monolithic payload. The
//! sender splits it into frames of bounded size; large dataset transfers
//! are shipped as a *stream*: one header frame followed by row-block
//! frames that the receiver can process (or relay) without ever holding
//! one giant allocation. Chunks of a single encoded message are zero-copy
//! [`Bytes`] slices of one buffer on the send side, and stream blocks stay
//! separate `Bytes` end to end on the receive side.
//!
//! # Frame layout (plaintext, before sealing) — wire v4
//!
//! The v4 frame header is varint-packed: 3 bytes for typical frames
//! instead of v3's fixed 14.
//!
//! ```text
//! offset  size   field
//! 0       1      bits 0–1: kind (0 = CONTROL, 1 = STREAM_HEADER,
//!                2 = STREAM_BLOCK); bits 2–6: reserved, must be zero;
//!                bit 7: LAST frame of the message
//! 1       1–10   msg_id (LEB128 varint) — unique per sender
//! …       1–5    seq (LEB128 varint) — 0-based frame index
//! …       …      payload
//! ```
//!
//! # Sealed envelope (v4)
//!
//! Each frame is sealed independently under the per-direction channel
//! key. The outer byte positions are **unchanged from v3** — only the
//! ciphertext's inner header packing differs — so key-less session
//! peeking and heartbeats work identically across both:
//!
//! ```text
//! offset  size  field
//! 0       8     session id (u64 LE) — plaintext, authenticated
//! 8       8     nonce (u64 LE)
//! 16      …     ciphertext (packed frame header ‖ payload)
//! len−8   8     tag (u64 LE)
//! ```
//!
//! The session id travels **in the clear** so a [`crate::mux::SessionMux`]
//! can demultiplex a shared physical mesh into per-session virtual
//! endpoints without holding any session's key ([`peek_session`] reads it
//! zero-copy). It is nonetheless **authenticated**: the id is mixed into
//! both the keystream and the tag derivation, so a frame re-stamped with a
//! different session id fails to open — one session's frames can never be
//! replayed into another, even when two sessions share a session secret.
//!
//! v4 supersedes v3 (fixed 14-byte frame header) which superseded the v2
//! envelope (`nonce ‖ ciphertext ‖ tag`, no session field); the formats
//! are not interchangeable. The v4 keystream runs splitmix64 in
//! **counter mode** — every 8-byte word is derived independently from
//! the (key, nonce, index) triple, so the XOR pipeline has no serial
//! dependency chain and vectorizes — and the keyed tag absorbs
//! 32-byte blocks into four independent accumulator lanes folded once
//! at the end. Word-at-a-time processing is what makes the chunked
//! pipeline several times faster than the byte-at-a-time legacy
//! envelope in [`crate::crypto`] on dataset-sized payloads. Same
//! disclaimer as [`crate::crypto`]: **this models link encryption, it
//! is not real cryptography.**

use crate::crypto::{ChannelKey, CryptoError};
use crate::pool;
use crate::transport::{PartyId, SessionId};
use crate::wire::{put_uvarint, read_uvarint, MAX_UVARINT_LEN};
use bytes::Bytes;
use std::collections::HashMap;
use std::fmt;

/// Smallest possible packed v4 frame header (flags/kind byte + 1-byte
/// msg_id varint + 1-byte seq varint).
pub const MIN_FRAME_HEADER_LEN: usize = 3;

/// Largest possible packed v4 frame header (flags/kind byte + 10-byte
/// msg_id varint + 5-byte seq varint) — the capacity the seal path
/// reserves before knowing the actual widths.
pub const MAX_FRAME_HEADER_LEN: usize = 1 + MAX_UVARINT_LEN + 5;

/// Sealing overhead per frame (session id + nonce + tag).
pub const SEAL_OVERHEAD: usize = 24;

/// Smallest valid sealed v4 frame: envelope overhead plus the minimum
/// packed header.
pub const MIN_SEALED_LEN: usize = 16 + MIN_FRAME_HEADER_LEN + 8;

/// Default maximum payload bytes per frame.
pub const DEFAULT_CHUNK_SIZE: usize = 60 * 1024;

/// Bit 7 of the packed header's first byte: last frame of the message.
const FLAG_LAST: u8 = 0x80;

/// Bits 2–6 of the packed header's first byte: reserved, must be zero.
const RESERVED_BITS: u8 = 0x7C;

/// Frame classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A chunk of an ordinary codec-encoded message.
    Control,
    /// The codec-encoded header that opens a stream.
    StreamHeader,
    /// One raw block of stream payload.
    StreamBlock,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Control => 0,
            FrameKind::StreamHeader => 1,
            FrameKind::StreamBlock => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, FrameError> {
        match b {
            0 => Ok(FrameKind::Control),
            1 => Ok(FrameKind::StreamHeader),
            2 => Ok(FrameKind::StreamBlock),
            _ => Err(FrameError::Malformed("unknown frame kind")),
        }
    }
}

/// One frame of a message.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame classification.
    pub kind: FrameKind,
    /// Sender-unique message id shared by all frames of one message.
    pub msg_id: u64,
    /// 0-based index of this frame within its message.
    pub seq: u32,
    /// Whether this is the last frame of the message.
    pub last: bool,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Framing-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The sealed envelope failed to open.
    Crypto(CryptoError),
    /// A frame violated the layout.
    Malformed(&'static str),
    /// Frames of one message arrived out of order or duplicated — SAP has
    /// no retransmission, so this aborts the session.
    Sequence {
        /// What was expected.
        expected: u32,
        /// What arrived.
        got: u32,
    },
    /// A stream block arrived with no preceding stream header.
    OrphanBlock,
    /// A caller that only handles plain messages received a stream.
    UnexpectedStream,
    /// A frame stamped for another session reached this endpoint — a
    /// routing bug or a cross-session injection attempt. Aborts only the
    /// receiving session, never the process or its siblings.
    SessionMismatch {
        /// The session this endpoint belongs to.
        expected: SessionId,
        /// The session the frame claimed.
        got: SessionId,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Crypto(e) => write!(f, "frame seal: {e}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::Sequence { expected, got } => {
                write!(
                    f,
                    "frame sequence violation: expected {expected}, got {got}"
                )
            }
            FrameError::OrphanBlock => write!(f, "stream block without stream header"),
            FrameError::UnexpectedStream => write!(f, "unexpected stream message"),
            FrameError::SessionMismatch { expected, got } => {
                write!(f, "frame for {got} delivered to {expected}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<CryptoError> for FrameError {
    fn from(e: CryptoError) -> Self {
        FrameError::Crypto(e)
    }
}

// ---------------------------------------------------------------------------
// Sealed envelope v2: word-wise keystream + word-wise keyed tag.
// ---------------------------------------------------------------------------

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Keystream word `i` of the stream seeded by `base` — splitmix64 in
/// counter mode. Unlike a chained xorshift state, every word is computed
/// independently of its neighbours, so the CPU overlaps several words at
/// once (and the compiler is free to vectorize the seal loop); the serial
/// state update was the single hottest dependency chain on the data path.
#[inline]
fn ks_word(base: u64, i: u64) -> u64 {
    splitmix(base.wrapping_add(i.wrapping_mul(GOLDEN)))
}

/// XORs the keystream over `buf` in 8-byte words (tail handled bytewise).
fn keystream_xor(key: u64, nonce: u64, buf: &mut [u8]) {
    let base = splitmix(key ^ nonce);
    let mut i = 0u64;
    let mut chunks = buf.chunks_exact_mut(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        chunk.copy_from_slice(&(word ^ ks_word(base, i)).to_le_bytes());
        i += 1;
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let ks = ks_word(base, i).to_le_bytes();
        for (b, k) in tail.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Keyed word-wise checksum over `data` (toy MAC, like [`crate::crypto`]'s
/// but eight bytes per step). Absorbs into four independent lanes —
/// `splitmix` is a long serial chain per absorption, so a single-lane
/// fold caps throughput at one word per chain; four lanes keep four
/// chains in flight and quadruple MAC bandwidth on the wide cores the
/// data path runs on. The lanes are folded together (with the length)
/// into one 64-bit tag at the end.
fn word_mac(key: u64, nonce: u64, data: &[u8]) -> u64 {
    let seed = splitmix(key ^ nonce.rotate_left(32)) | 1;
    let mut h = [
        seed,
        splitmix(seed),
        splitmix(seed ^ GOLDEN),
        splitmix(seed.rotate_left(31)),
    ];
    let mut blocks = data.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in h.iter_mut().zip(block.chunks_exact(8)) {
            *lane = splitmix(*lane ^ u64::from_le_bytes(word.try_into().expect("8 bytes")));
        }
    }
    let mut lane = 0;
    let mut words = blocks.remainder().chunks_exact(8);
    for word in &mut words {
        h[lane] = splitmix(h[lane] ^ u64::from_le_bytes(word.try_into().expect("8 bytes")));
        lane += 1;
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        h[lane] = splitmix(h[lane] ^ u64::from_le_bytes(word));
    }
    let folded = splitmix(splitmix(splitmix(h[0] ^ h[1]) ^ h[2]) ^ h[3]);
    splitmix(folded ^ data.len() as u64)
}

/// Mixes the (plaintext) session id into the nonce fed to the keystream
/// and tag, binding every sealed frame to its session: re-stamping a frame
/// with another session id invalidates the tag.
fn envelope_tweak(session: SessionId, nonce: u64) -> u64 {
    nonce ^ splitmix(session.0 ^ 0x5E55_1014_0000_00D3)
}

/// Reads the session id off a sealed v4 frame without opening it — the
/// zero-decode demultiplexing hook used by [`crate::mux::SessionMux`].
/// Returns `None` when the buffer is too short to be a sealed frame.
pub fn peek_session(sealed: &[u8]) -> Option<SessionId> {
    if sealed.len() < MIN_SEALED_LEN {
        return None;
    }
    let raw: [u8; 8] = sealed[..8].try_into().ok()?;
    Some(SessionId(u64::from_le_bytes(raw)))
}

// ---------------------------------------------------------------------------
// Liveness (heartbeat) frames
// ---------------------------------------------------------------------------

/// Magic constant identifying a heartbeat frame behind the
/// [`SessionId::LIVENESS`] stamp.
const HEARTBEAT_MAGIC: u64 = 0x4C49_5645_4245_3454; // "LIVEBE4T"

/// Size of a heartbeat frame. Fixed at 38 bytes — the v3 minimum sealed
/// size, kept verbatim across the v4 header repack so the liveness plane
/// is byte-compatible — and comfortably above [`MIN_SEALED_LEN`], so
/// [`peek_session`] reads its stamp like any other frame's.
pub const HEARTBEAT_LEN: usize = 38;

/// Encodes a liveness heartbeat from `from` with a monotone `seq`.
///
/// Heartbeats are **plaintext** control traffic stamped with the reserved
/// [`SessionId::LIVENESS`] id: a mux pump consumes them to refresh its
/// peer-liveness clock without holding any session key, and never routes
/// them to a session. They are deliberately unauthenticated — forging one
/// can only *delay* failure detection for a peer that is in fact dead,
/// never abort or corrupt a session, which matches the trusted-network
/// assumption the rest of the link layer already makes.
///
/// Layout (all little-endian): `LIVENESS session id (8) ‖ magic (8) ‖
/// sender party id (8) ‖ seq (8) ‖ zero padding to 38 bytes`.
pub fn encode_heartbeat(from: PartyId, seq: u64) -> Bytes {
    let mut out = vec![0u8; HEARTBEAT_LEN];
    out[..8].copy_from_slice(&SessionId::LIVENESS.0.to_le_bytes());
    out[8..16].copy_from_slice(&HEARTBEAT_MAGIC.to_le_bytes());
    out[16..24].copy_from_slice(&from.0.to_le_bytes());
    out[24..32].copy_from_slice(&seq.to_le_bytes());
    Bytes::from(out)
}

/// Decodes a heartbeat frame, returning the claimed sender and sequence
/// number, or `None` when the buffer is not a heartbeat.
pub fn decode_heartbeat(buf: &[u8]) -> Option<(PartyId, u64)> {
    if buf.len() != HEARTBEAT_LEN || peek_session(buf) != Some(SessionId::LIVENESS) {
        return None;
    }
    let magic = u64::from_le_bytes(buf[8..16].try_into().ok()?);
    if magic != HEARTBEAT_MAGIC {
        return None;
    }
    let from = PartyId(u64::from_le_bytes(buf[16..24].try_into().ok()?));
    let seq = u64::from_le_bytes(buf[24..32].try_into().ok()?);
    Some((from, seq))
}

/// Header fields of a frame about to be sealed, without its payload —
/// the input to [`seal_frame_with`], whose payload is generated in place.
#[derive(Debug, Clone, Copy)]
pub struct FrameMeta {
    /// Frame classification.
    pub kind: FrameKind,
    /// Sender-unique message id shared by all frames of one message.
    pub msg_id: u64,
    /// 0-based index of this frame within its message.
    pub seq: u32,
    /// Whether this is the last frame of the message.
    pub last: bool,
}

impl FrameMeta {
    /// The header of an existing frame.
    pub fn of(frame: &Frame) -> FrameMeta {
        FrameMeta {
            kind: frame.kind,
            msg_id: frame.msg_id,
            seq: frame.seq,
            last: frame.last,
        }
    }
}

/// Appends the packed v4 frame header: flags/kind byte, varint msg_id,
/// varint seq.
fn put_header(out: &mut Vec<u8>, meta: FrameMeta) {
    let first = meta.kind.to_byte() | if meta.last { FLAG_LAST } else { 0 };
    out.push(first);
    put_uvarint(out, meta.msg_id);
    put_uvarint(out, u64::from(meta.seq));
}

/// Parses the packed v4 frame header off the front of a decrypted body,
/// returning the header fields and the header's byte length.
fn parse_header(plain: &[u8]) -> Result<(FrameMeta, usize), FrameError> {
    let Some(&first) = plain.first() else {
        return Err(FrameError::Malformed("empty frame body"));
    };
    if first & RESERVED_BITS != 0 {
        return Err(FrameError::Malformed("reserved header bits set"));
    }
    let kind = FrameKind::from_byte(first & 0x03)?;
    let last = first & FLAG_LAST != 0;
    let mut rest = &plain[1..];
    let unread = rest.len();
    let msg_id = read_uvarint(&mut rest).map_err(|_| FrameError::Malformed("msg id varint"))?;
    let seq = read_uvarint(&mut rest)
        .ok()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(FrameError::Malformed("seq varint"))?;
    let header_len = 1 + (unread - rest.len());
    Ok((
        FrameMeta {
            kind,
            msg_id,
            seq,
            last,
        },
        header_len,
    ))
}

/// Seals one frame under the channel key for `session`: header and payload
/// are encrypted together; layout `session ‖ nonce ‖ ciphertext ‖ tag`.
/// The output buffer comes from (and eventually returns to) the global
/// [`pool`].
pub fn seal_frame(key: ChannelKey, nonce: u64, session: SessionId, frame: &Frame) -> Bytes {
    let meta = FrameMeta::of(frame);
    let payload = &frame.payload;
    let result = seal_frame_with::<std::convert::Infallible, _>(
        key,
        nonce,
        session,
        meta,
        payload.len(),
        |out| {
            out.extend_from_slice(payload);
            Ok(())
        },
    );
    match result {
        Ok(sealed) => sealed,
        Err(infallible) => match infallible {},
    }
}

/// Seals a frame whose payload is produced **directly into the sealed
/// buffer**: acquires a pooled buffer, writes the envelope prefix and
/// packed header, calls `write_payload` to append the payload bytes (a
/// codec sink, a row-block encoder, …), then encrypts in place and tags.
/// This is the zero-intermediate-copy path: payload bytes are only ever
/// written once, into the buffer the transport will hand to the socket.
///
/// # Errors
///
/// Propagates `write_payload`'s error unchanged (the pooled buffer is
/// recycled, not leaked); sealing itself cannot fail.
pub fn seal_frame_with<E, F>(
    key: ChannelKey,
    nonce: u64,
    session: SessionId,
    meta: FrameMeta,
    size_hint: usize,
    write_payload: F,
) -> Result<Bytes, E>
where
    F: FnOnce(&mut Vec<u8>) -> Result<(), E>,
{
    let pool = pool::global();
    let mut out = pool.acquire(16 + MAX_FRAME_HEADER_LEN + size_hint + 8);
    out.extend_from_slice(&session.0.to_le_bytes());
    out.extend_from_slice(&nonce.to_le_bytes());
    put_header(&mut out, meta);
    if let Err(e) = write_payload(&mut out) {
        pool.recycle_vec(out);
        return Err(e);
    }
    let tweak = envelope_tweak(session, nonce);
    keystream_xor(key.0, tweak, &mut out[16..]);
    let tag = word_mac(key.0, tweak, &out[16..]);
    out.extend_from_slice(&tag.to_le_bytes());
    Ok(Bytes::from(out))
}

/// Opens a sealed frame, returning the session it was stamped for along
/// with the frame. The payload is a zero-copy slice of the single
/// decrypted buffer. The caller decides whether the session matches its
/// own (see [`FrameError::SessionMismatch`]); it also still owns `sealed`
/// and should recycle it into the [`pool`] when it came off
/// a transport (see [`open_frame_recycling`]).
///
/// # Errors
///
/// * [`FrameError::Crypto`] on truncation or tag mismatch.
/// * [`FrameError::Malformed`] on a bad kind byte, reserved header bits,
///   or an overflowing varint.
pub fn open_frame(key: ChannelKey, sealed: &[u8]) -> Result<(SessionId, Frame), FrameError> {
    if sealed.len() < MIN_SEALED_LEN {
        return Err(CryptoError::Truncated.into());
    }
    let session = SessionId(u64::from_le_bytes(sealed[..8].try_into().expect("8 bytes")));
    let nonce = u64::from_le_bytes(sealed[8..16].try_into().expect("8 bytes"));
    let tweak = envelope_tweak(session, nonce);
    let body_end = sealed.len() - 8;
    let expected_tag = u64::from_le_bytes(sealed[body_end..].try_into().expect("8 bytes"));
    if word_mac(key.0, tweak, &sealed[16..body_end]) != expected_tag {
        return Err(CryptoError::BadTag.into());
    }
    let mut plain = sealed[16..body_end].to_vec();
    keystream_xor(key.0, tweak, &mut plain);

    let (meta, header_len) = parse_header(&plain)?;
    let payload = Bytes::from(plain).slice(header_len..);
    Ok((
        session,
        Frame {
            kind: meta.kind,
            msg_id: meta.msg_id,
            seq: meta.seq,
            last: meta.last,
            payload,
        },
    ))
}

/// [`open_frame`], but consuming the sealed transport buffer — the
/// receive-path counterpart of [`seal_frame_with`]'s acquire. When this
/// was the buffer's last reference it is decrypted **in place**: no
/// second allocation, no plaintext copy, and the same buffer is handed
/// onward as the frame payload. On error, or when other references pin
/// the buffer, it is recycled into the global pool (shared buffers after
/// [`open_frame`]'s copying path).
///
/// # Errors
///
/// As [`open_frame`].
pub fn open_frame_recycling(
    key: ChannelKey,
    sealed: Bytes,
) -> Result<(SessionId, Frame), FrameError> {
    match sealed.try_into_vec() {
        Ok(vec) => open_frame_owned(key, vec),
        Err(sealed) => {
            let result = open_frame(key, &sealed);
            pool::global().recycle(sealed);
            result
        }
    }
}

/// The sole-owner fast path behind [`open_frame_recycling`]: verify the
/// tag, decrypt in place, slice the payload out of the very buffer the
/// socket filled.
fn open_frame_owned(
    key: ChannelKey,
    mut sealed: Vec<u8>,
) -> Result<(SessionId, Frame), FrameError> {
    if sealed.len() < MIN_SEALED_LEN {
        pool::global().recycle_vec(sealed);
        return Err(CryptoError::Truncated.into());
    }
    let session = SessionId(u64::from_le_bytes(sealed[..8].try_into().expect("8 bytes")));
    let nonce = u64::from_le_bytes(sealed[8..16].try_into().expect("8 bytes"));
    let tweak = envelope_tweak(session, nonce);
    let body_end = sealed.len() - 8;
    let expected_tag = u64::from_le_bytes(sealed[body_end..].try_into().expect("8 bytes"));
    if word_mac(key.0, tweak, &sealed[16..body_end]) != expected_tag {
        pool::global().recycle_vec(sealed);
        return Err(CryptoError::BadTag.into());
    }
    keystream_xor(key.0, tweak, &mut sealed[16..body_end]);
    let (meta, header_len) = match parse_header(&sealed[16..body_end]) {
        Ok(parsed) => parsed,
        Err(e) => {
            pool::global().recycle_vec(sealed);
            return Err(e);
        }
    };
    let payload = Bytes::from(sealed).slice(16 + header_len..body_end);
    Ok((
        session,
        Frame {
            kind: meta.kind,
            msg_id: meta.msg_id,
            seq: meta.seq,
            last: meta.last,
            payload,
        },
    ))
}

/// Splits an encoded message into control frames whose payloads are
/// zero-copy slices of `encoded`.
pub fn split_message(msg_id: u64, encoded: Bytes, chunk_size: usize) -> Vec<Frame> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let len = encoded.len();
    let chunks = len.div_ceil(chunk_size).max(1);
    (0..chunks)
        .map(|i| {
            let start = i * chunk_size;
            let end = (start + chunk_size).min(len);
            Frame {
                kind: FrameKind::Control,
                msg_id,
                seq: u32::try_from(i).expect("chunk count fits u32"),
                last: i + 1 == chunks,
                payload: encoded.slice(start..end),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Reassembly
// ---------------------------------------------------------------------------

/// A fully reassembled inbound message.
#[derive(Debug)]
pub enum Assembled {
    /// An ordinary codec-encoded message (chunks already joined; a
    /// single-frame message passes through without copying).
    Message(Bytes),
    /// A stream: the codec-encoded header plus its raw blocks, never
    /// concatenated.
    Stream {
        /// Encoded stream header.
        header: Bytes,
        /// Raw payload blocks, in order.
        blocks: Vec<Bytes>,
    },
}

enum Partial {
    Message {
        msg_id: u64,
        next_seq: u32,
        chunks: Vec<Bytes>,
    },
    Stream {
        msg_id: u64,
        next_seq: u32,
        header: Bytes,
        blocks: Vec<Bytes>,
    },
}

/// Per-sender reassembly of frames into messages.
///
/// Transports deliver per-sender FIFO and a sender completes one message
/// before starting the next, so reassembly state is keyed by sender alone;
/// any interleaving or reordering within a sender is a hard error (SAP
/// aborts rather than guessing).
#[derive(Default)]
pub struct Reassembler {
    pending: HashMap<PartyId, Partial>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one frame; returns a message when `frame` completes one.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on sequence violations, kind mixing, or
    /// orphan blocks.
    pub fn feed(&mut self, from: PartyId, frame: Frame) -> Result<Option<Assembled>, FrameError> {
        let partial = self.pending.remove(&from);
        match (frame.kind, partial) {
            (FrameKind::Control, None) => {
                if frame.seq != 0 {
                    return Err(FrameError::Sequence {
                        expected: 0,
                        got: frame.seq,
                    });
                }
                if frame.last {
                    return Ok(Some(Assembled::Message(frame.payload)));
                }
                self.pending.insert(
                    from,
                    Partial::Message {
                        msg_id: frame.msg_id,
                        next_seq: 1,
                        chunks: vec![frame.payload],
                    },
                );
                Ok(None)
            }
            (
                FrameKind::Control,
                Some(Partial::Message {
                    msg_id,
                    next_seq,
                    mut chunks,
                }),
            ) => {
                check_continuity(msg_id, next_seq, &frame)?;
                chunks.push(frame.payload);
                if frame.last {
                    return Ok(Some(Assembled::Message(join_chunks(&chunks))));
                }
                self.pending.insert(
                    from,
                    Partial::Message {
                        msg_id,
                        next_seq: next_seq + 1,
                        chunks,
                    },
                );
                Ok(None)
            }
            (FrameKind::StreamHeader, None) => {
                if frame.seq != 0 {
                    return Err(FrameError::Sequence {
                        expected: 0,
                        got: frame.seq,
                    });
                }
                if frame.last {
                    // Empty stream: header only.
                    return Ok(Some(Assembled::Stream {
                        header: frame.payload,
                        blocks: Vec::new(),
                    }));
                }
                self.pending.insert(
                    from,
                    Partial::Stream {
                        msg_id: frame.msg_id,
                        next_seq: 1,
                        header: frame.payload,
                        blocks: Vec::new(),
                    },
                );
                Ok(None)
            }
            (
                FrameKind::StreamBlock,
                Some(Partial::Stream {
                    msg_id,
                    next_seq,
                    header,
                    mut blocks,
                }),
            ) => {
                check_continuity(msg_id, next_seq, &frame)?;
                blocks.push(frame.payload);
                if frame.last {
                    return Ok(Some(Assembled::Stream { header, blocks }));
                }
                self.pending.insert(
                    from,
                    Partial::Stream {
                        msg_id,
                        next_seq: next_seq + 1,
                        header,
                        blocks,
                    },
                );
                Ok(None)
            }
            (FrameKind::StreamBlock, None) => Err(FrameError::OrphanBlock),
            (_, Some(_)) => Err(FrameError::Malformed("frame kind changed mid-message")),
        }
    }

    /// Number of senders with an unfinished message (for diagnostics).
    pub fn pending_senders(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one frame in **streaming mode**: control messages still
    /// assemble whole (they are small), but stream frames surface as
    /// per-frame [`FlowItem`]s the moment they arrive — the hook the
    /// streaming data plane uses to overlap compute with I/O instead of
    /// buffering a dataset's every block before delivery.
    ///
    /// Continuity (sequence, message id, kind mixing) is enforced exactly
    /// as in [`Reassembler::feed`]; the only difference is that stream
    /// blocks are never retained here. A receiver must drive one mode or
    /// the other consistently for a given sender's stream — mixing
    /// buffered and streaming receives mid-stream loses blocks.
    ///
    /// # Errors
    ///
    /// As [`Reassembler::feed`].
    pub fn feed_streaming(
        &mut self,
        from: PartyId,
        frame: Frame,
    ) -> Result<Option<FlowItem>, FrameError> {
        match frame.kind {
            FrameKind::Control => Ok(self.feed(from, frame)?.map(|assembled| match assembled {
                Assembled::Message(bytes) => FlowItem::Message(bytes),
                Assembled::Stream { .. } => unreachable!("control frames never finish a stream"),
            })),
            FrameKind::StreamHeader => {
                if self.pending.contains_key(&from) {
                    return Err(FrameError::Malformed("frame kind changed mid-message"));
                }
                if frame.seq != 0 {
                    return Err(FrameError::Sequence {
                        expected: 0,
                        got: frame.seq,
                    });
                }
                let last = frame.last;
                if !last {
                    // Continuity state only; blocks are never buffered in
                    // streaming mode.
                    self.pending.insert(
                        from,
                        Partial::Stream {
                            msg_id: frame.msg_id,
                            next_seq: 1,
                            header: Bytes::new(),
                            blocks: Vec::new(),
                        },
                    );
                }
                Ok(Some(FlowItem::StreamHeader {
                    header: frame.payload,
                    last,
                }))
            }
            FrameKind::StreamBlock => match self.pending.remove(&from) {
                Some(Partial::Stream {
                    msg_id, next_seq, ..
                }) => {
                    check_continuity(msg_id, next_seq, &frame)?;
                    if !frame.last {
                        self.pending.insert(
                            from,
                            Partial::Stream {
                                msg_id,
                                next_seq: next_seq + 1,
                                header: Bytes::new(),
                                blocks: Vec::new(),
                            },
                        );
                    }
                    Ok(Some(FlowItem::StreamBlock {
                        block: frame.payload,
                        last: frame.last,
                    }))
                }
                Some(partial) => {
                    self.pending.insert(from, partial);
                    Err(FrameError::Malformed("frame kind changed mid-message"))
                }
                None => Err(FrameError::OrphanBlock),
            },
        }
    }
}

/// One streaming-mode delivery from [`Reassembler::feed_streaming`]: the
/// per-frame granularity the data plane consumes.
#[derive(Debug)]
pub enum FlowItem {
    /// A fully assembled control message (control frames are small and
    /// still coalesce).
    Message(Bytes),
    /// A stream opened: the codec-encoded header. `last` marks an empty
    /// stream (no blocks follow).
    StreamHeader {
        /// Encoded stream header.
        header: Bytes,
        /// `true` when the stream carries no blocks.
        last: bool,
    },
    /// One raw stream block, delivered the moment it arrived.
    StreamBlock {
        /// The raw block payload, exactly as sent.
        block: Bytes,
        /// `true` when this is the stream's final block.
        last: bool,
    },
}

fn check_continuity(msg_id: u64, next_seq: u32, frame: &Frame) -> Result<(), FrameError> {
    if frame.msg_id != msg_id {
        return Err(FrameError::Malformed("message id changed mid-message"));
    }
    if frame.seq != next_seq {
        return Err(FrameError::Sequence {
            expected: next_seq,
            got: frame.seq,
        });
    }
    Ok(())
}

fn join_chunks(chunks: &[Bytes]) -> Bytes {
    let total: usize = chunks.iter().map(Bytes::len).sum();
    let mut out = Vec::with_capacity(total);
    for chunk in chunks {
        out.extend_from_slice(chunk);
    }
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ChannelKey {
        ChannelKey::derive(77, 1, 2)
    }

    fn frame(kind: FrameKind, msg_id: u64, seq: u32, last: bool, payload: &[u8]) -> Frame {
        Frame {
            kind,
            msg_id,
            seq,
            last,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn seal_open_roundtrip() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let f = frame(FrameKind::StreamBlock, 42, 3, true, &payload);
            let sealed = seal_frame(key(), 9, SessionId(6), &f);
            let (session, back) = open_frame(key(), &sealed).unwrap();
            assert_eq!(session, SessionId(6));
            assert_eq!(back.kind, FrameKind::StreamBlock);
            assert_eq!(back.msg_id, 42);
            assert_eq!(back.seq, 3);
            assert!(back.last);
            assert_eq!(&back.payload[..], &payload[..]);
        }
    }

    #[test]
    fn packed_header_sizes() {
        // Small ids: 3-byte header, so an empty frame is MIN_SEALED_LEN.
        let f = frame(FrameKind::Control, 1, 0, true, b"");
        let sealed = seal_frame(key(), 1, SessionId(1), &f);
        assert_eq!(sealed.len(), MIN_SEALED_LEN);
        // Maximal ids widen the varints to the documented maximum.
        let f = frame(FrameKind::StreamBlock, u64::MAX, u32::MAX, false, b"");
        let sealed = seal_frame(key(), 2, SessionId(1), &f);
        assert_eq!(sealed.len(), SEAL_OVERHEAD + MAX_FRAME_HEADER_LEN);
        let (_, back) = open_frame(key(), &sealed).unwrap();
        assert_eq!(
            (back.msg_id, back.seq, back.last),
            (u64::MAX, u32::MAX, false)
        );
    }

    #[test]
    fn parse_header_rejects_reserved_bits_and_bad_kind() {
        assert!(matches!(
            parse_header(&[0x04, 0, 0]),
            Err(FrameError::Malformed("reserved header bits set"))
        ));
        assert!(matches!(
            parse_header(&[0x03, 0, 0]),
            Err(FrameError::Malformed("unknown frame kind"))
        ));
        assert!(matches!(parse_header(&[]), Err(FrameError::Malformed(_))));
        // Truncated msg_id varint.
        assert!(matches!(
            parse_header(&[0x00, 0x80]),
            Err(FrameError::Malformed("msg id varint"))
        ));
    }

    #[test]
    fn seal_frame_with_matches_copy_path_and_recycles() {
        let payload = b"generated directly into the sealed buffer";
        let meta = FrameMeta {
            kind: FrameKind::StreamBlock,
            msg_id: 9,
            seq: 1,
            last: false,
        };
        let sealed = seal_frame_with::<std::convert::Infallible, _>(
            key(),
            4,
            SessionId(2),
            meta,
            payload.len(),
            |out| {
                out.extend_from_slice(payload);
                Ok(())
            },
        )
        .unwrap();
        let reference = seal_frame(
            key(),
            4,
            SessionId(2),
            &frame(FrameKind::StreamBlock, 9, 1, false, payload),
        );
        assert_eq!(&sealed[..], &reference[..]);

        let (session, back) = open_frame_recycling(key(), sealed).unwrap();
        assert_eq!(session, SessionId(2));
        assert_eq!(&back.payload[..], payload);
    }

    #[test]
    fn seal_frame_with_propagates_writer_errors() {
        let meta = FrameMeta {
            kind: FrameKind::Control,
            msg_id: 1,
            seq: 0,
            last: true,
        };
        let err = seal_frame_with::<&'static str, _>(key(), 1, SessionId(1), meta, 16, |_| {
            Err("codec exploded")
        })
        .unwrap_err();
        assert_eq!(err, "codec exploded");
    }

    #[test]
    fn sealed_frames_hide_plaintext() {
        let f = frame(
            FrameKind::Control,
            1,
            0,
            true,
            b"sensitive dataset rows here",
        );
        let sealed = seal_frame(key(), 5, SessionId::SOLO, &f);
        assert!(!sealed
            .windows(b"sensitive".len())
            .any(|w| w == b"sensitive"));
    }

    #[test]
    fn peek_session_reads_envelope_without_key() {
        let f = frame(FrameKind::Control, 1, 0, true, b"payload");
        let sealed = seal_frame(key(), 5, SessionId(0xBEEF), &f);
        assert_eq!(peek_session(&sealed), Some(SessionId(0xBEEF)));
        assert_eq!(peek_session(&sealed[..12]), None);
    }

    #[test]
    fn session_id_is_authenticated() {
        // Re-stamping a sealed frame with a different session id must
        // invalidate the tag — frames cannot be replayed across sessions.
        let f = frame(FrameKind::Control, 1, 0, true, b"payload");
        let sealed = seal_frame(key(), 5, SessionId(1), &f);
        let mut restamped = sealed.to_vec();
        restamped[..8].copy_from_slice(&2u64.to_le_bytes());
        assert!(matches!(
            open_frame(key(), &restamped).unwrap_err(),
            FrameError::Crypto(CryptoError::BadTag)
        ));
    }

    #[test]
    fn tamper_and_truncation_detected() {
        let f = frame(FrameKind::Control, 1, 0, true, b"payload");
        let sealed = seal_frame(key(), 5, SessionId::SOLO, &f);
        let mut bad = sealed.to_vec();
        bad[20] ^= 1;
        assert!(matches!(
            open_frame(key(), &bad).unwrap_err(),
            FrameError::Crypto(CryptoError::BadTag)
        ));
        assert!(matches!(
            open_frame(key(), &sealed[..10]).unwrap_err(),
            FrameError::Crypto(CryptoError::Truncated)
        ));
    }

    #[test]
    fn wrong_key_detected() {
        let f = frame(FrameKind::Control, 1, 0, true, b"payload");
        let sealed = seal_frame(key(), 5, SessionId::SOLO, &f);
        let other = ChannelKey::derive(77, 1, 3);
        assert!(matches!(
            open_frame(other, &sealed).unwrap_err(),
            FrameError::Crypto(CryptoError::BadTag)
        ));
    }

    #[test]
    fn split_message_slices_share_buffer() {
        let encoded = Bytes::from((0..100u8).collect::<Vec<_>>());
        let frames = split_message(7, encoded, 30);
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0].payload.len(), 30);
        assert_eq!(frames[3].payload.len(), 10);
        assert!(frames[3].last);
        assert!(frames[..3].iter().all(|f| !f.last));
        let rejoined: Vec<u8> = frames.iter().flat_map(|f| f.payload.to_vec()).collect();
        assert_eq!(rejoined, (0..100u8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_message_still_produces_one_frame() {
        let frames = split_message(1, Bytes::new(), 64);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].last);
        assert!(frames[0].payload.is_empty());
    }

    #[test]
    fn reassembles_multi_chunk_message() {
        let mut r = Reassembler::new();
        let from = PartyId(3);
        assert!(r
            .feed(from, frame(FrameKind::Control, 9, 0, false, b"ab"))
            .unwrap()
            .is_none());
        let out = r
            .feed(from, frame(FrameKind::Control, 9, 1, true, b"cd"))
            .unwrap()
            .unwrap();
        let Assembled::Message(bytes) = out else {
            panic!("expected message");
        };
        assert_eq!(&bytes[..], b"abcd");
        assert_eq!(r.pending_senders(), 0);
    }

    #[test]
    fn reassembles_stream() {
        let mut r = Reassembler::new();
        let from = PartyId(3);
        assert!(r
            .feed(from, frame(FrameKind::StreamHeader, 5, 0, false, b"hdr"))
            .unwrap()
            .is_none());
        assert!(r
            .feed(from, frame(FrameKind::StreamBlock, 5, 1, false, b"b0"))
            .unwrap()
            .is_none());
        let out = r
            .feed(from, frame(FrameKind::StreamBlock, 5, 2, true, b"b1"))
            .unwrap()
            .unwrap();
        let Assembled::Stream { header, blocks } = out else {
            panic!("expected stream");
        };
        assert_eq!(&header[..], b"hdr");
        assert_eq!(blocks.len(), 2);
        assert_eq!(&blocks[0][..], b"b0");
        assert_eq!(&blocks[1][..], b"b1");
    }

    #[test]
    fn senders_interleave_independently() {
        let mut r = Reassembler::new();
        assert!(r
            .feed(PartyId(1), frame(FrameKind::Control, 1, 0, false, b"a"))
            .unwrap()
            .is_none());
        assert!(r
            .feed(PartyId(2), frame(FrameKind::Control, 8, 0, false, b"x"))
            .unwrap()
            .is_none());
        assert!(r
            .feed(PartyId(1), frame(FrameKind::Control, 1, 1, true, b"b"))
            .unwrap()
            .is_some());
        assert!(r
            .feed(PartyId(2), frame(FrameKind::Control, 8, 1, true, b"y"))
            .unwrap()
            .is_some());
    }

    #[test]
    fn sequence_violations_error() {
        let mut r = Reassembler::new();
        let from = PartyId(1);
        // Duplicate of seq 0 after seq 0.
        r.feed(from, frame(FrameKind::Control, 1, 0, false, b"a"))
            .unwrap();
        assert!(matches!(
            r.feed(from, frame(FrameKind::Control, 1, 0, false, b"a"))
                .unwrap_err(),
            FrameError::Sequence {
                expected: 1,
                got: 0
            }
        ));

        // Orphan block.
        let mut r = Reassembler::new();
        assert!(matches!(
            r.feed(from, frame(FrameKind::StreamBlock, 2, 1, false, b"z"))
                .unwrap_err(),
            FrameError::OrphanBlock
        ));

        // Kind mixing.
        let mut r = Reassembler::new();
        r.feed(from, frame(FrameKind::StreamHeader, 3, 0, false, b"h"))
            .unwrap();
        assert!(matches!(
            r.feed(from, frame(FrameKind::Control, 3, 1, false, b"c"))
                .unwrap_err(),
            FrameError::Malformed(_)
        ));

        // Message id drift.
        let mut r = Reassembler::new();
        r.feed(from, frame(FrameKind::Control, 4, 0, false, b"a"))
            .unwrap();
        assert!(matches!(
            r.feed(from, frame(FrameKind::Control, 5, 1, true, b"b"))
                .unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    #[test]
    fn feed_streaming_surfaces_blocks_immediately() {
        let mut r = Reassembler::new();
        let from = PartyId(3);
        let Some(FlowItem::StreamHeader { header, last }) = r
            .feed_streaming(from, frame(FrameKind::StreamHeader, 5, 0, false, b"hdr"))
            .unwrap()
        else {
            panic!("expected immediate header");
        };
        assert_eq!(&header[..], b"hdr");
        assert!(!last);
        let Some(FlowItem::StreamBlock { block, last }) = r
            .feed_streaming(from, frame(FrameKind::StreamBlock, 5, 1, false, b"b0"))
            .unwrap()
        else {
            panic!("expected immediate block");
        };
        assert_eq!(&block[..], b"b0");
        assert!(!last);
        // Continuity state is kept, but no blocks are buffered.
        assert_eq!(r.pending_senders(), 1);
        let Some(FlowItem::StreamBlock { last, .. }) = r
            .feed_streaming(from, frame(FrameKind::StreamBlock, 5, 2, true, b"b1"))
            .unwrap()
        else {
            panic!("expected final block");
        };
        assert!(last);
        assert_eq!(r.pending_senders(), 0);
    }

    #[test]
    fn feed_streaming_enforces_continuity() {
        let mut r = Reassembler::new();
        let from = PartyId(1);
        assert!(matches!(
            r.feed_streaming(from, frame(FrameKind::StreamBlock, 2, 1, false, b"z"))
                .unwrap_err(),
            FrameError::OrphanBlock
        ));
        r.feed_streaming(from, frame(FrameKind::StreamHeader, 3, 0, false, b"h"))
            .unwrap();
        assert!(matches!(
            r.feed_streaming(from, frame(FrameKind::StreamBlock, 3, 5, false, b"b"))
                .unwrap_err(),
            FrameError::Sequence {
                expected: 1,
                got: 5
            }
        ));
    }

    #[test]
    fn feed_streaming_handles_control_and_empty_streams() {
        let mut r = Reassembler::new();
        let from = PartyId(7);
        // Control chunks still coalesce.
        assert!(r
            .feed_streaming(from, frame(FrameKind::Control, 9, 0, false, b"ab"))
            .unwrap()
            .is_none());
        let Some(FlowItem::Message(bytes)) = r
            .feed_streaming(from, frame(FrameKind::Control, 9, 1, true, b"cd"))
            .unwrap()
        else {
            panic!("expected message");
        };
        assert_eq!(&bytes[..], b"abcd");
        // An empty stream is just its header, marked last.
        let Some(FlowItem::StreamHeader { last, .. }) = r
            .feed_streaming(from, frame(FrameKind::StreamHeader, 10, 0, true, b"h"))
            .unwrap()
        else {
            panic!("expected header");
        };
        assert!(last);
        assert_eq!(r.pending_senders(), 0);
    }

    #[test]
    fn heartbeat_roundtrip_and_rejection() {
        let hb = encode_heartbeat(PartyId(7), 42);
        assert_eq!(hb.len(), HEARTBEAT_LEN);
        assert_eq!(peek_session(&hb), Some(SessionId::LIVENESS));
        assert_eq!(decode_heartbeat(&hb), Some((PartyId(7), 42)));
        // Wrong magic, wrong length, and ordinary sealed frames all reject.
        let mut bad = hb.to_vec();
        bad[8] ^= 1;
        assert_eq!(decode_heartbeat(&bad), None);
        assert_eq!(decode_heartbeat(&hb[..20]), None);
        let f = frame(FrameKind::Control, 1, 0, true, b"payload");
        let sealed = seal_frame(key(), 5, SessionId(3), &f);
        assert_eq!(decode_heartbeat(&sealed), None);
    }

    #[test]
    fn word_envelope_differs_from_legacy() {
        // Same key/nonce/plaintext must not produce the legacy envelope's
        // ciphertext (the formats are distinct and non-interchangeable).
        let f = frame(FrameKind::Control, 1, 0, true, b"same plaintext bytes");
        let v3 = seal_frame(key(), 3, SessionId::SOLO, &f);
        let v1 = crate::crypto::seal(key(), 3, b"same plaintext bytes");
        assert_ne!(&v3[..], &v1[..]);
        assert!(crate::crypto::open(key(), &v3).is_err());
    }
}
