//! A real TCP transport: the same [`Transport`] contract as the in-memory
//! hub, over sockets.
//!
//! Each party binds a listener and knows its peers' addresses. Outgoing
//! connections are opened lazily on first send (with bounded retry, so
//! peers may come up in any order) and kept alive for the session. On the
//! wire every payload travels as `[sender id: u64 LE]` once per
//! connection, then `[len: u32 LE][payload]` per message — the sealed
//! frames of [`crate::frame`] are the payloads, so TCP sees only
//! ciphertext.
//!
//! The implementation is deliberately thread-per-connection blocking I/O:
//! a SAP session has a handful of long-lived channels, not thousands, and
//! the protocol actors block on `recv` anyway.
//!
//! # Identity model
//!
//! The 8-byte sender id at connection start is a **routing hint**, not
//! authentication — anything that can reach the port can claim any id
//! (the in-memory hub, being in-process, stamps it authoritatively).
//! *Content* authenticity comes from the layer above: every frame is
//! sealed under the per-direction channel key derived from the session
//! secret, so a claimed id that does not match the sealing key fails to
//! open and aborts the session.
//!
//! # Garbage frames in the multi-session world
//!
//! In the original one-process-one-session deployment an unauthenticated
//! outsider could send one garbage frame and abort *the* session — and
//! with it the process's only work. When the endpoint is shared by many
//! sessions through a [`crate::mux::SessionMux`], the blast radius is
//! bounded per session: a frame stamped with an unknown `SessionId` is
//! counted and dropped without disturbing the connection, and a garbage
//! frame stamped with a live session aborts **only the session it
//! claims** — every sibling session on the same socket keeps running.
//! (A *malformed length prefix* still kills the carrying connection:
//! there is no way to resynchronize a byte stream after a corrupt
//! header.) Run the mesh on a trusted network, as the paper's
//! link-encryption assumption already requires.

use crate::transport::{pop_delivery, Delivery, PartyId, Transport, TransportError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on one sealed payload (64 MiB) — a hard stop against
/// corrupt or hostile length prefixes.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// Default window over which `send` keeps retrying to reach a peer that
/// has not bound yet (peers may come up in any order).
pub const DEFAULT_CONNECT_WINDOW: Duration = Duration::from_secs(5);

/// First backoff sleep of the connect retry schedule; doubles per attempt.
/// Shared with the reactor backend so both retry identically.
pub(crate) const CONNECT_BACKOFF_FLOOR: Duration = Duration::from_millis(2);

/// Backoff ceiling — retries never sleep longer than this between
/// attempts, so a late-binding peer is noticed promptly even deep into
/// the window.
pub(crate) const CONNECT_BACKOFF_CAP: Duration = Duration::from_millis(250);

/// Connect window for [`Transport::send_liveness`] heartbeat sends — far
/// shorter than the regular window, so a dead (never-connected) peer
/// cannot stall a heartbeat emitter long enough to starve beats to
/// healthy peers.
pub(crate) const HEARTBEAT_CONNECT_WINDOW: Duration = Duration::from_millis(100);

/// Upper bound on the *up-front* payload buffer acquisition in the read
/// path. A frame claiming more grows incrementally with bytes actually
/// received — the claimed length caps the read, never the allocation.
const PAYLOAD_ACQUIRE_CAP: usize = 128 * 1024;

/// A TCP-backed [`Transport`] endpoint.
pub struct TcpTransport {
    id: PartyId,
    local_addr: SocketAddr,
    peers: Mutex<HashMap<PartyId, SocketAddr>>,
    // Per-peer write locks: the outer map lock is held only to look up or
    // install an entry, never across connect/write — a peer that is down
    // (connect retries up to `connect_window`) must not block sends to
    // healthy peers.
    conns: Mutex<HashMap<PartyId, Arc<Mutex<Option<TcpStream>>>>>,
    // Behind a mutex solely to make the endpoint `Sync` for the mux pump;
    // one logical consumer still owns receive ordering.
    inbox: Mutex<Receiver<Delivery>>,
    connect_window: Duration,
    shutdown: Arc<AtomicBool>,
}

impl TcpTransport {
    /// Binds a listener on `127.0.0.1:0` and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(id: PartyId) -> std::io::Result<Self> {
        Self::bind_addr(id, SocketAddr::from(([127, 0, 0, 1], 0)))
    }

    /// Binds a listener on an explicit address and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_addr(id: PartyId, addr: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name(format!("tcp-accept-{id}"))
            .spawn(move || accept_loop(&listener, &tx, &accept_shutdown))?;
        Ok(TcpTransport {
            id,
            local_addr,
            peers: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            inbox: Mutex::new(rx),
            connect_window: DEFAULT_CONNECT_WINDOW,
            shutdown,
        })
    }

    /// The bound listen address (port is concrete after `bind`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Registers where a peer listens. Must happen before sending to it.
    pub fn register_peer(&self, peer: PartyId, addr: SocketAddr) {
        self.peers.lock().insert(peer, addr);
    }

    /// Overrides the connect retry window (how long a `send` waits for a
    /// peer that has not bound yet before failing with
    /// [`TransportError::ConnectFailed`]).
    pub fn set_connect_window(&mut self, window: Duration) {
        self.connect_window = window;
    }

    /// Connects with exponential backoff: session setup may race peer
    /// binds, so failures retry with doubling sleeps (2 ms → 250 ms cap)
    /// until `window` closes, then fail with the typed
    /// [`TransportError::ConnectFailed`] naming the address and attempt
    /// count — not a generic disconnect.
    fn connect(&self, to: PartyId, window: Duration) -> Result<TcpStream, TransportError> {
        let addr = *self
            .peers
            .lock()
            .get(&to)
            .ok_or(TransportError::UnknownParty(to))?;
        let deadline = Instant::now() + window;
        let mut backoff = CONNECT_BACKOFF_FLOOR;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    stream
                        .write_all(&self.id.0.to_le_bytes())
                        .map_err(|_| TransportError::Disconnected)?;
                    return Ok(stream);
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(
                        backoff.min(deadline.saturating_duration_since(Instant::now())),
                    );
                    backoff = (backoff * 2).min(CONNECT_BACKOFF_CAP);
                }
                Err(_) => return Err(TransportError::ConnectFailed { addr, attempts }),
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &Sender<Delivery>, shutdown: &Arc<AtomicBool>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let tx = tx.clone();
        // A failed reader spawn drops this one connection; the listener —
        // and every session multiplexed over other connections — lives on.
        let _ = std::thread::Builder::new()
            .name("tcp-reader".into())
            .spawn(move || reader_loop(stream, &tx));
    }
}

fn reader_loop(mut stream: TcpStream, tx: &Sender<Delivery>) {
    let mut id_buf = [0u8; 8];
    if stream.read_exact(&mut id_buf).is_err() {
        return;
    }
    let from = PartyId(u64::from_le_bytes(id_buf));
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            // EOF or read error on an identified connection: the peer's
            // process closed its socket (crash, exit, or teardown).
            // Surface a typed in-band PeerDown so a receiver blocked on
            // this endpoint fails fast instead of starving until its
            // protocol timeout.
            let _ = tx.send(Delivery::PeerDown(from));
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_PAYLOAD {
            // A corrupt/hostile length prefix kills the carrying
            // connection (no resynchronizing a byte stream) — surface the
            // typed oversize marker so the receiver fails that peer's
            // session with [`TransportError::OversizeFrame`] instead of a
            // generic peer-down.
            let _ = stream.shutdown(Shutdown::Both);
            let _ = tx.send(Delivery::Oversize(from, len));
            return;
        }
        // The claimed length bounds the *read*, never the allocation: a
        // pooled buffer of capped initial capacity grows only with bytes
        // actually received, so an attacker claiming (a legal) 64 MiB pays
        // for the bytes itself instead of reserving our memory up front.
        let mut payload = crate::pool::global().acquire(len.min(PAYLOAD_ACQUIRE_CAP));
        match (&mut stream).take(len as u64).read_to_end(&mut payload) {
            Ok(n) if n == len => {}
            _ => {
                crate::pool::global().recycle_vec(payload);
                let _ = tx.send(Delivery::PeerDown(from));
                return;
            }
        }
        if tx
            .send(Delivery::Frame(from, Bytes::from(payload)))
            .is_err()
        {
            return; // endpoint dropped
        }
    }
}

impl Transport for TcpTransport {
    fn local_id(&self) -> PartyId {
        self.id
    }

    fn send(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        self.send_within(to, payload, self.connect_window)
    }

    fn send_liveness(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        // Heartbeats must never stall the emitter: neither in a dead
        // peer's connect retry (the short window below) nor behind the
        // per-peer write lock while a *regular* send sits in its own
        // full connect window (try_lock). A contended lock means the
        // link is being actively worked this instant, so skipping the
        // beat is sound — data frames refresh the remote watchdog too.
        let slot = self.conn_slot(to);
        let Some(stream_slot) = slot.try_lock() else {
            return Ok(());
        };
        self.write_locked(
            to,
            payload,
            stream_slot,
            HEARTBEAT_CONNECT_WINDOW.min(self.connect_window),
        )
    }

    fn recv(&self) -> Result<(PartyId, Bytes), TransportError> {
        self.inbox
            .lock()
            .recv()
            .map_err(|_| TransportError::Disconnected)
            .and_then(pop_delivery)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(PartyId, Bytes), TransportError> {
        self.inbox
            .lock()
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::Timeout,
                RecvTimeoutError::Disconnected => TransportError::Disconnected,
            })
            .and_then(pop_delivery)
    }
}

impl TcpTransport {
    fn conn_slot(&self, to: PartyId) -> Arc<Mutex<Option<TcpStream>>> {
        Arc::clone(
            self.conns
                .lock()
                .entry(to)
                .or_insert_with(|| Arc::new(Mutex::new(None))),
        )
    }

    fn send_within(
        &self,
        to: PartyId,
        payload: Bytes,
        window: Duration,
    ) -> Result<(), TransportError> {
        // Connect lazily and write under the per-peer lock only; frames to
        // one peer stay contiguous while other peers proceed in parallel.
        let slot = self.conn_slot(to);
        let stream_slot = slot.lock();
        self.write_locked(to, payload, stream_slot, window)
    }

    fn write_locked(
        &self,
        to: PartyId,
        payload: Bytes,
        mut stream_slot: std::sync::MutexGuard<'_, Option<TcpStream>>,
        window: Duration,
    ) -> Result<(), TransportError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(TransportError::PayloadTooLarge {
                size: payload.len(),
            });
        }
        if stream_slot.is_none() {
            *stream_slot = Some(self.connect(to, window)?);
        }
        let Some(stream) = stream_slot.as_mut() else {
            return Err(TransportError::Disconnected);
        };
        let len = u32::try_from(payload.len()).map_err(|_| TransportError::PayloadTooLarge {
            size: payload.len(),
        })?;
        let write = stream
            .write_all(&len.to_le_bytes())
            .and_then(|()| stream.write_all(&payload));
        if write.is_err() {
            *stream_slot = None;
            return Err(TransportError::Disconnected);
        }
        Ok(())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the accept loop so it observes the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        for (_, slot) in self.conns.lock().drain() {
            if let Some(conn) = slot.lock().take() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Which TCP backend serves an endpoint: the readiness-driven reactor
/// (default) or the thread-per-connection blocking implementation kept as
/// the equivalence reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One reactor thread multiplexing every lane
    /// ([`crate::reactor::ReactorTransport`]).
    Reactor,
    /// Thread-per-connection blocking I/O ([`TcpTransport`]).
    Threaded,
}

impl Backend {
    /// Reads `SAP_NET_BACKEND` (`threaded` selects the blocking backend;
    /// anything else — including unset — selects the reactor).
    pub fn from_env() -> Backend {
        match std::env::var("SAP_NET_BACKEND") {
            Ok(v) if v == "threaded" => Backend::Threaded,
            _ => Backend::Reactor,
        }
    }

    /// Stable lowercase name for logs and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reactor => "reactor",
            Backend::Threaded => "threaded",
        }
    }
}

/// One TCP endpoint served by either backend. The two speak an identical
/// wire protocol, so lanes of different backends interoperate freely
/// within one mesh; which one a [`local_mesh`] builds is chosen by
/// [`Backend::from_env`].
pub enum TcpLane {
    /// A thread-per-connection blocking endpoint.
    Threaded(TcpTransport),
    /// A readiness-driven reactor endpoint.
    Reactor(crate::reactor::ReactorTransport),
}

impl TcpLane {
    /// Binds one endpoint of the given backend on an ephemeral localhost
    /// port.
    ///
    /// # Errors
    ///
    /// Propagates socket/poller setup failures.
    pub fn bind(id: PartyId, backend: Backend) -> std::io::Result<TcpLane> {
        match backend {
            Backend::Threaded => TcpTransport::bind(id).map(TcpLane::Threaded),
            Backend::Reactor => crate::reactor::ReactorTransport::bind(id).map(TcpLane::Reactor),
        }
    }

    /// Which backend serves this lane.
    pub fn backend(&self) -> Backend {
        match self {
            TcpLane::Threaded(_) => Backend::Threaded,
            TcpLane::Reactor(_) => Backend::Reactor,
        }
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        match self {
            TcpLane::Threaded(t) => t.local_addr(),
            TcpLane::Reactor(r) => r.local_addr(),
        }
    }

    /// Registers where a peer listens. Must happen before sending to it.
    pub fn register_peer(&self, peer: PartyId, addr: SocketAddr) {
        match self {
            TcpLane::Threaded(t) => t.register_peer(peer, addr),
            TcpLane::Reactor(r) => r.register_peer(peer, addr),
        }
    }

    /// Overrides the connect retry window (how long a send waits for a
    /// peer that has not bound yet before failing with
    /// [`TransportError::ConnectFailed`]).
    pub fn set_connect_window(&mut self, window: Duration) {
        match self {
            TcpLane::Threaded(t) => t.set_connect_window(window),
            TcpLane::Reactor(r) => r.set_connect_window(window),
        }
    }
}

impl Transport for TcpLane {
    fn local_id(&self) -> PartyId {
        match self {
            TcpLane::Threaded(t) => t.local_id(),
            TcpLane::Reactor(r) => r.local_id(),
        }
    }

    fn send(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        match self {
            TcpLane::Threaded(t) => t.send(to, payload),
            TcpLane::Reactor(r) => r.send(to, payload),
        }
    }

    fn send_liveness(&self, to: PartyId, payload: Bytes) -> Result<(), TransportError> {
        match self {
            TcpLane::Threaded(t) => t.send_liveness(to, payload),
            TcpLane::Reactor(r) => r.send_liveness(to, payload),
        }
    }

    fn recv(&self) -> Result<(PartyId, Bytes), TransportError> {
        match self {
            TcpLane::Threaded(t) => t.recv(),
            TcpLane::Reactor(r) => r.recv(),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(PartyId, Bytes), TransportError> {
        match self {
            TcpLane::Threaded(t) => t.recv_timeout(timeout),
            TcpLane::Reactor(r) => r.recv_timeout(timeout),
        }
    }
}

/// Builds a fully meshed set of TCP endpoints on localhost, one per party,
/// with every peer address pre-registered — the TCP analogue of
/// registering every party on an [`crate::transport::InMemoryHub`]. The
/// backend comes from [`Backend::from_env`]: the reactor unless
/// `SAP_NET_BACKEND=threaded`.
///
/// # Errors
///
/// Propagates socket errors.
pub fn local_mesh(ids: &[PartyId]) -> std::io::Result<Vec<TcpLane>> {
    local_mesh_with(ids, Backend::from_env())
}

/// [`local_mesh`] with an explicit backend — equivalence tests pin each
/// side instead of inheriting the environment.
///
/// # Errors
///
/// Propagates socket errors.
pub fn local_mesh_with(ids: &[PartyId], backend: Backend) -> std::io::Result<Vec<TcpLane>> {
    let lanes: Vec<TcpLane> = ids
        .iter()
        .map(|&id| TcpLane::bind(id, backend))
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<(PartyId, SocketAddr)> = lanes
        .iter()
        .map(|t| (t.local_id(), t.local_addr()))
        .collect();
    for lane in &lanes {
        for &(peer, addr) in &addrs {
            // Self is registered too: the in-memory hub allows a party to
            // send to itself (the SAP exchange plan may assign a provider
            // as its own receiver), so the TCP mesh must as well — it
            // simply loops through the local listener.
            lane.register_peer(peer, addr);
        }
    }
    Ok(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_send_and_receive() {
        let mesh = local_mesh(&[PartyId(1), PartyId(2)]).unwrap();
        let (a, b) = {
            let mut it = mesh.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        a.send(PartyId(2), Bytes::from_static(b"over tcp")).unwrap();
        let (from, payload) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, PartyId(1));
        assert_eq!(&payload[..], b"over tcp");
    }

    #[test]
    fn tcp_fifo_per_sender() {
        let mesh = local_mesh(&[PartyId(1), PartyId(2)]).unwrap();
        let (a, b) = {
            let mut it = mesh.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        for i in 0..50u8 {
            a.send(PartyId(2), Bytes::copy_from_slice(&[i])).unwrap();
        }
        for i in 0..50u8 {
            let (_, p) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(p[0], i);
        }
    }

    #[test]
    fn tcp_bidirectional_and_large_payload() {
        let mesh = local_mesh(&[PartyId(1), PartyId(2)]).unwrap();
        let (a, b) = {
            let mut it = mesh.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        let big: Vec<u8> = (0..1_000_000usize).map(|i| (i % 251) as u8).collect();
        a.send(PartyId(2), Bytes::from(big.clone())).unwrap();
        b.send(PartyId(1), Bytes::from_static(b"ack")).unwrap();
        let (_, got) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(&got[..64], &big[..64]);
        let (_, ack) = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&ack[..], b"ack");
    }

    #[test]
    fn unknown_peer_errors() {
        let t = TcpTransport::bind(PartyId(1)).unwrap();
        assert_eq!(
            t.send(PartyId(9), Bytes::new()).unwrap_err(),
            TransportError::UnknownParty(PartyId(9))
        );
    }

    #[test]
    fn timeout_when_silent() {
        let t = TcpTransport::bind(PartyId(1)).unwrap();
        assert_eq!(
            t.recv_timeout(Duration::from_millis(20)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn unreachable_peer_fails_with_typed_connect_error() {
        // Reserve a port nobody listens on by binding and dropping.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut t = TcpTransport::bind(PartyId(1)).unwrap();
        t.set_connect_window(Duration::from_millis(120));
        t.register_peer(PartyId(2), dead_addr);
        let start = std::time::Instant::now();
        let err = t.send(PartyId(2), Bytes::from_static(b"x")).unwrap_err();
        let TransportError::ConnectFailed { addr, attempts } = err else {
            panic!("expected ConnectFailed, got {err}");
        };
        assert_eq!(addr, dead_addr);
        // Exponential backoff: a 120 ms window at 2/4/8/… ms sleeps makes
        // several attempts but far fewer than the old 10 ms busy-loop's 12.
        assert!(attempts >= 2, "backoff retried ({attempts} attempts)");
        assert!(
            start.elapsed() >= Duration::from_millis(100),
            "the whole window was used"
        );
    }

    #[test]
    fn oversize_length_claim_surfaces_typed_error_without_allocation() {
        let t = TcpTransport::bind(PartyId(2)).unwrap();
        let mut rogue = TcpStream::connect(t.local_addr()).unwrap();
        rogue.write_all(&7u64.to_le_bytes()).unwrap();
        // Claim ~4 GiB. The reader must reject on the prefix alone —
        // never allocating the claim — and name the offender.
        rogue.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let err = t.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(
            err,
            TransportError::OversizeFrame {
                from: PartyId(7),
                claimed: u32::MAX as usize
            }
        );
    }

    #[test]
    fn both_backends_roundtrip_via_explicit_mesh() {
        for backend in [Backend::Threaded, Backend::Reactor] {
            let mesh = local_mesh_with(&[PartyId(1), PartyId(2)], backend).unwrap();
            let (a, b) = {
                let mut it = mesh.into_iter();
                (it.next().unwrap(), it.next().unwrap())
            };
            assert_eq!(a.backend(), backend);
            a.send(PartyId(2), Bytes::from_static(b"either way"))
                .unwrap();
            let (from, payload) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(from, PartyId(1));
            assert_eq!(&payload[..], b"either way");
        }
    }

    #[test]
    fn peer_socket_close_surfaces_peer_down() {
        let mesh = local_mesh(&[PartyId(1), PartyId(2)]).unwrap();
        let (a, b) = {
            let mut it = mesh.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        a.send(PartyId(2), Bytes::from_static(b"hello")).unwrap();
        let (_, payload) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&payload[..], b"hello");
        // Party 1's process "dies": dropping the transport closes its
        // sockets, and party 2's blocked receive fails fast with the
        // typed peer-down instead of waiting out a timeout.
        drop(a);
        let err = b.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, TransportError::PeerDown(PartyId(1)));
    }
}
