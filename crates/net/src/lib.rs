//! Pluggable, streaming multiparty messaging for the SAP protocol.
//!
//! The PODC'07 brief runs between three roles — data providers, a
//! coordinator, and the mining service provider — and "assume\[s\] that
//! encryption is applied before data is transmitted on the network". This
//! crate supplies the communication substrate those roles run on, as a
//! layered pipeline in which every layer is swappable:
//!
//! ```text
//!   protocol actors (sap-core)          — generic over Transport + Codec
//!        │ typed messages / streams
//!   [`node`]   Node<T, C>               — typed send/recv, stream relay,
//!        │ codec-encoded bytes            session-stamped envelopes
//!   [`codec`]  Codec: wire | json       — pluggable serialization
//!        │ encoded message
//!   [`frame`]  chunked sealed frames    — bounded chunks, per-frame seal,
//!        │ sealed v4 frames (Bytes)       authenticated SessionId stamp
//!   [`mux`]    SessionMux               — many sessions, one physical mesh
//!        │ session-routed frames
//!   [`transport`] / [`tcp`] / [`sim`]   — in-memory hub, TCP, fault inject
//! ```
//!
//! * [`codec`] — the [`codec::Codec`] trait; [`codec::WireCodec`] (compact
//!   binary, default) and [`codec::JsonCodec`] (self-describing debug).
//! * [`wire`] — the binary format behind `WireCodec` (spec in the module
//!   docs).
//! * [`json`] — the JSON-ish format behind `JsonCodec`.
//! * [`frame`] — chunked streaming frames with a per-frame sealed
//!   envelope; datasets travel as row-block streams, never one giant
//!   allocation.
//! * [`crypto`] — the legacy byte-wise toy envelope (kept for
//!   compatibility and comparison benches). **Not real cryptography**,
//!   and neither is the frame envelope; they model the interface.
//! * [`transport`] — the [`transport::Transport`] trait and the in-memory
//!   hub implementation over channels, one endpoint per party.
//! * [`tcp`] — a real TCP backend with the same contract: blocking
//!   thread-per-connection ([`tcp::TcpTransport`]) kept as the
//!   equivalence reference, fronted by [`tcp::TcpLane`] which defaults to
//!   the reactor.
//! * [`reactor`] — the readiness-driven TCP backend: one reactor thread
//!   multiplexing every lane over the vendored epoll/poll shim, pooled
//!   frame buffers, and coalesced vectored writes.
//! * [`mux`] — [`mux::SessionMux`]: demultiplexes one physical endpoint
//!   into per-session virtual endpoints (bounded queues, unknown-session
//!   shedding), keyed by the v4 envelope's authenticated session stamp.
//! * [`sim`] — a fault-injecting transport decorator (drops, duplicates,
//!   reordering, link latency) for failure-injection tests and benches.
//! * [`node`] — typed convenience layer: send/receive codec values over
//!   sealed frames, plus zero-decode stream relays.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
pub mod crypto;
pub mod frame;
pub mod json;
pub mod mux;
pub mod node;
pub mod pool;
pub mod reactor;
pub mod sim;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use codec::{AutoCodec, Codec, CodecError, JsonCodec, WireCodec};
pub use mux::{MuxEndpoint, MuxMetrics, SessionMux};
pub use node::{Node, NodeEvent, NodeFlow, StreamHandle};
pub use reactor::{ReactorStats, ReactorTransport};
pub use tcp::{Backend, TcpLane, TcpTransport};
pub use transport::{InMemoryHub, PartyId, SessionId, Transport, TransportError};
