//! Simulated multiparty transport for the SAP protocol.
//!
//! The PODC'07 brief runs between three roles — data providers, a
//! coordinator, and the mining service provider — and "assume[s] that
//! encryption is applied before data is transmitted on the network". This
//! crate supplies the communication substrate those roles run on, built so
//! the protocol logic in `sap-core` is testable end-to-end with realistic
//! failure modes:
//!
//! * [`wire`] — a compact, non-self-describing binary serde codec (the
//!   workspace's offline dependency set has no serde *format* crate, so one
//!   is implemented here).
//! * [`crypto`] — a toy stream-cipher + checksum envelope standing in for
//!   the paper's assumed link encryption. **Not real cryptography**; it
//!   models the interface (key per channel, sealed payloads, tamper
//!   detection), not the security.
//! * [`transport`] — the [`transport::Transport`] trait and an in-memory
//!   hub implementation over crossbeam channels, one endpoint per party.
//! * [`sim`] — a fault-injecting transport decorator (drops, duplicates,
//!   reordering) for failure-injection tests.
//! * [`node`] — typed convenience layer: send/receive serde values over a
//!   sealed channel.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod crypto;
pub mod node;
pub mod sim;
pub mod transport;
pub mod wire;

pub use node::Node;
pub use transport::{InMemoryHub, PartyId, Transport, TransportError};
