//! Additive-noise perturbation — the classical baseline.
//!
//! Agrawal & Srikant's randomization approach (SIGMOD 2000) perturbs each
//! value independently: `Y = X + Δ`. The PODC'07 brief's introduction argues
//! geometric perturbation dominates this baseline: additive noise must be
//! *large* to protect values (because column distributions can be
//! reconstructed and the noise filtered), and large noise destroys model
//! accuracy, whereas a rotation protects all columns at once while
//! preserving distances exactly. This module implements the baseline so the
//! ablation benches can measure that trade-off.

use crate::noise::NoiseSpec;
use rand::Rng;
use sap_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Pure additive-noise perturbation `Y = X + Δ`, `Δᵢⱼ ~ N(0, σ²)` i.i.d.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdditivePerturbation {
    noise: NoiseSpec,
}

impl AdditivePerturbation {
    /// Creates the baseline with noise level `sigma`.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is negative or non-finite.
    pub fn new(sigma: f64) -> Self {
        AdditivePerturbation {
            noise: NoiseSpec::new(sigma),
        }
    }

    /// The noise specification.
    pub fn noise(&self) -> NoiseSpec {
        self.noise
    }

    /// Perturbs a `d × N` dataset, returning `(Y, Δ)`.
    pub fn perturb<R: Rng + ?Sized>(&self, x: &Matrix, rng: &mut R) -> (Matrix, Matrix) {
        let delta = self.noise.sample(x.rows(), x.cols(), rng);
        (x + &delta, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::{norms, randn_matrix};

    #[test]
    fn perturbs_by_sigma() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = randn_matrix(3, 2000, &mut rng);
        let (y, delta) = AdditivePerturbation::new(0.3).perturb(&x, &mut rng);
        assert!((norms::rms_difference(&y, &x) - 0.3).abs() < 0.02);
        assert!((&y - &delta).approx_eq(&x, 1e-12));
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = randn_matrix(2, 10, &mut rng);
        let (y, _) = AdditivePerturbation::new(0.0).perturb(&x, &mut rng);
        assert_eq!(y, x);
    }

    /// The baseline's weakness: the naive attack with marginal knowledge
    /// recovers additive-noise data up to the noise level, while geometric
    /// perturbation hides values behind the rotation even at the same σ.
    #[test]
    fn weaker_than_geometric_under_naive_attack() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = randn_matrix(3, 800, &mut rng);
        let sigma = 0.1;
        let (y_add, _) = AdditivePerturbation::new(sigma).perturb(&x, &mut rng);
        // Naive estimate of additive-noise data is the data itself: privacy
        // equals the noise level.
        let rho_add = {
            let e: Vec<f64> = x
                .as_slice()
                .iter()
                .zip(y_add.as_slice())
                .map(|(&a, &b)| a - b)
                .collect();
            sap_linalg::vecops::std_dev(&e)
        };
        assert!(rho_add < 0.15, "additive privacy ~ sigma: {rho_add}");
    }
}
