//! Space adaptors: re-basing perturbed data from one perturbation space into
//! another without touching the raw data.
//!
//! Section 3 of the brief: since `Yᵢ = RᵢXᵢ + Ψᵢ + Δᵢ`, transforming `Yᵢ`
//! into the target space `G_t : (R_t, t_t)` gives
//!
//! ```text
//! Y_{i→t} = R_it·Yᵢ + Ψ_it − Δ_it
//!   R_it = R_t·Rᵢ⁻¹                (rotation adaptor)
//!   Ψ_it = Ψ_t − R_t·Rᵢ⁻¹·Ψᵢ       (translation adaptor)
//!   Δ_it = R_t·Rᵢ⁻¹·Δᵢ             (complementary noise)
//! ```
//!
//! The adaptor `⟨R_it, Ψ_it⟩` is what a provider sends to the coordinator;
//! applying it *without* subtracting `Δ_it` is "equivalent to inheriting the
//! noise component `Δᵢ` from the original space" — the data arrives in the
//! target space still carrying its original (rotated) noise.

use crate::params::Perturbation;
use sap_linalg::{LinalgError, Matrix, Result};
use serde::{Deserialize, Serialize};

/// The space adaptor `A_it = ⟨R_it, Ψ_it⟩` from a source perturbation space
/// into a target space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceAdaptor {
    rotation: Matrix,
    translation: Vec<f64>,
}

impl SpaceAdaptor {
    /// Computes the adaptor between a source space `Gᵢ : (Rᵢ, tᵢ)` and a
    /// target space `G_t : (R_t, t_t)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the two spaces have
    /// different dimensionality.
    pub fn between(source: &Perturbation, target: &Perturbation) -> Result<Self> {
        if source.dim() != target.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "space adaptor",
                lhs: (source.dim(), source.dim()),
                rhs: (target.dim(), target.dim()),
            });
        }
        // R_it = R_t · Rᵢ⁻¹ (orthogonal: inverse = transpose).
        let r_it = target
            .rotation()
            .matmul(&source.rotation().transpose())
            .expect("dims checked");
        // ψ_it = t_t − R_it · tᵢ.
        let rit_ti = r_it.matvec(source.translation()).expect("dims checked");
        let translation: Vec<f64> = target
            .translation()
            .iter()
            .zip(&rit_ti)
            .map(|(&tt, &r)| tt - r)
            .collect();
        Ok(SpaceAdaptor {
            rotation: r_it,
            translation,
        })
    }

    /// Dimensionality of the adapted space.
    pub fn dim(&self) -> usize {
        self.rotation.rows()
    }

    /// The rotation adaptor `R_it`.
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// The translation adaptor `ψ_it` (the paper's `Ψ_it` is `ψ_it·1ᵀ`).
    pub fn translation(&self) -> &[f64] {
        &self.translation
    }

    /// Applies the adaptor to a perturbed `d × N` dataset:
    /// `Y_{i→t} = R_it·Yᵢ + Ψ_it` — target-space data carrying the
    /// complementary noise `Δ_it`.
    ///
    /// # Panics
    ///
    /// Panics when `y.rows() != self.dim()`.
    pub fn apply(&self, y: &Matrix) -> Matrix {
        assert_eq!(y.rows(), self.dim(), "adaptor dimensionality mismatch");
        let ry = self.rotation.matmul(y).expect("dims checked");
        Matrix::from_fn(ry.rows(), ry.cols(), |r, c| {
            ry[(r, c)] + self.translation[r]
        })
    }

    /// Applies the adaptor to a **record-major** block of perturbed
    /// records (`n × d`, one record per row — the streaming data plane's
    /// layout), writing the adapted records into `out`.
    ///
    /// Large blocks run record-parallel on the
    /// [`sap_linalg::parallel`] splitter; element accumulation order
    /// matches [`SpaceAdaptor::apply`] exactly (ascending `k`, zero
    /// rotation entries skipped, translation added last), so adapting a
    /// dataset block by block — or record ranges on different threads —
    /// is bit-identical to one monolithic [`SpaceAdaptor::apply`] call.
    ///
    /// # Panics
    ///
    /// Panics when `records.len()` is not a multiple of the adaptor
    /// dimension or `out.len() != records.len()`.
    pub fn adapt_records(&self, records: &[f64], out: &mut [f64]) {
        let d = self.dim();
        assert_eq!(records.len() % d.max(1), 0, "ragged record block");
        assert_eq!(out.len(), records.len(), "output length mismatch");
        let n = records.len() / d.max(1);
        let kernel = |rec0: usize, chunk: &mut [f64]| {
            for (r, out_rec) in chunk.chunks_exact_mut(d).enumerate() {
                let rec = &records[(rec0 + r) * d..(rec0 + r + 1) * d];
                for (i, slot) in out_rec.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (k, &a) in self.rotation.row(i).iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        acc += a * rec[k];
                    }
                    *slot = acc + self.translation[i];
                }
            }
        };
        let flops = n.saturating_mul(d).saturating_mul(d);
        if sap_linalg::parallel::worth_splitting(flops) && n > 1 {
            let per = n.div_ceil(sap_linalg::parallel::threads());
            sap_linalg::parallel::for_each_chunk_mut(out, per * d, |chunk_idx, chunk| {
                kernel(chunk_idx * per, chunk);
            });
        } else {
            kernel(0, out);
        }
    }

    /// The complementary noise `Δ_it = R_it·Δᵢ` for a realized source noise
    /// matrix; provided for tests and privacy analysis (the protocol itself
    /// never has access to `Δᵢ`).
    ///
    /// # Panics
    ///
    /// Panics when `delta.rows() != self.dim()`.
    pub fn complementary_noise(&self, delta: &Matrix) -> Matrix {
        assert_eq!(delta.rows(), self.dim(), "noise dimensionality mismatch");
        self.rotation.matmul(delta).expect("dims checked")
    }

    /// Composes adaptors: `other ∘ self`, i.e. first adapt by `self`
    /// (`i → t₁`), then by `other` (`t₁ → t₂`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on dimension mismatch.
    pub fn then(&self, other: &SpaceAdaptor) -> Result<SpaceAdaptor> {
        if self.dim() != other.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "adaptor composition",
                lhs: (self.dim(), self.dim()),
                rhs: (other.dim(), other.dim()),
            });
        }
        let rotation = other.rotation.matmul(&self.rotation)?;
        let shifted = other.rotation.matvec(&self.translation)?;
        let translation = other
            .translation
            .iter()
            .zip(&shifted)
            .map(|(&a, &b)| a + b)
            .collect();
        Ok(SpaceAdaptor {
            rotation,
            translation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::GeometricPerturbation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::{norms, randn_matrix};

    /// The paper's central identity: applying the adaptor to noiseless
    /// perturbed data lands exactly on the target-space perturbation.
    #[test]
    fn adaptor_identity_noiseless() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = randn_matrix(5, 40, &mut rng);
        let gi = Perturbation::random(5, &mut rng);
        let gt = Perturbation::random(5, &mut rng);
        let yi = gi.apply_clean(&x);
        let adaptor = SpaceAdaptor::between(&gi, &gt).unwrap();
        let yt = adaptor.apply(&yi);
        assert!(yt.approx_eq(&gt.apply_clean(&x), 1e-8));
    }

    /// With noise: `A_it(Yᵢ) = G_t(Xᵢ) + Δ_it` where `Δ_it = R_it·Δᵢ`.
    #[test]
    fn adaptor_identity_with_complementary_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = randn_matrix(4, 30, &mut rng);
        let gi = GeometricPerturbation::random(4, 0.2, &mut rng);
        let gt = Perturbation::random(4, &mut rng);
        let (yi, delta) = gi.perturb(&x, &mut rng);

        let adaptor = SpaceAdaptor::between(gi.base(), &gt).unwrap();
        let yt = adaptor.apply(&yi);
        let expected = &gt.apply_clean(&x) + &adaptor.complementary_noise(&delta);
        assert!(yt.approx_eq(&expected, 1e-8));
    }

    /// Complementary noise has the same magnitude as the original noise
    /// (rotations are isometries) — "equivalent to inheriting Δᵢ".
    #[test]
    fn complementary_noise_preserves_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let gi = Perturbation::random(6, &mut rng);
        let gt = Perturbation::random(6, &mut rng);
        let adaptor = SpaceAdaptor::between(&gi, &gt).unwrap();
        let delta = randn_matrix(6, 100, &mut rng);
        let comp = adaptor.complementary_noise(&delta);
        assert!((comp.frobenius_norm() - delta.frobenius_norm()).abs() < 1e-8);
    }

    #[test]
    fn rotation_adaptor_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(4);
        let gi = Perturbation::random(5, &mut rng);
        let gt = Perturbation::random(5, &mut rng);
        let adaptor = SpaceAdaptor::between(&gi, &gt).unwrap();
        assert!(adaptor.rotation().is_orthogonal(1e-8));
    }

    #[test]
    fn adaptor_to_self_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Perturbation::random(3, &mut rng);
        let adaptor = SpaceAdaptor::between(&g, &g).unwrap();
        let x = randn_matrix(3, 10, &mut rng);
        assert!(adaptor.apply(&x).approx_eq(&x, 1e-8));
    }

    #[test]
    fn composition_matches_direct() {
        let mut rng = StdRng::seed_from_u64(6);
        let g1 = Perturbation::random(4, &mut rng);
        let g2 = Perturbation::random(4, &mut rng);
        let g3 = Perturbation::random(4, &mut rng);
        let a12 = SpaceAdaptor::between(&g1, &g2).unwrap();
        let a23 = SpaceAdaptor::between(&g2, &g3).unwrap();
        let a13 = SpaceAdaptor::between(&g1, &g3).unwrap();
        let composed = a12.then(&a23).unwrap();
        let x = randn_matrix(4, 20, &mut rng);
        let err = norms::rms_difference(&composed.apply(&x), &a13.apply(&x));
        assert!(err < 1e-8, "composition mismatch {err}");
    }

    /// Block-wise record-major adaptation must match the monolithic
    /// column-matrix apply bit-for-bit at any block size.
    #[test]
    fn adapt_records_bit_identical_to_apply() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = 5;
        let n = 173;
        let gi = Perturbation::random(d, &mut rng);
        let gt = Perturbation::random(d, &mut rng);
        let adaptor = SpaceAdaptor::between(&gi, &gt).unwrap();
        let y = randn_matrix(d, n, &mut rng);
        let reference = adaptor.apply(&y);

        // Record-major copy of y, adapted in uneven blocks.
        let records: Vec<f64> = (0..n).flat_map(|j| y.column(j)).collect();
        let mut adapted = vec![0.0; records.len()];
        for block in [1usize, 7, 64, n + 10] {
            adapted.iter_mut().for_each(|v| *v = f64::NAN);
            let mut r0 = 0;
            while r0 < n {
                let r1 = (r0 + block).min(n);
                adaptor.adapt_records(&records[r0 * d..r1 * d], &mut adapted[r0 * d..r1 * d]);
                r0 = r1;
            }
            for j in 0..n {
                for i in 0..d {
                    assert_eq!(
                        adapted[j * d + i].to_bits(),
                        reference[(i, j)].to_bits(),
                        "block={block} record={j} feature={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let g3 = Perturbation::random(3, &mut rng);
        let g4 = Perturbation::random(4, &mut rng);
        assert!(SpaceAdaptor::between(&g3, &g4).is_err());
    }

    /// The adaptor alone cannot recover the raw data when noise is present:
    /// this is the privacy property the protocol relies on.
    #[test]
    fn adaptor_does_not_denoise() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = randn_matrix(4, 200, &mut rng);
        let gi = GeometricPerturbation::random(4, 0.3, &mut rng);
        let gt = Perturbation::random(4, &mut rng);
        let (yi, _) = gi.perturb(&x, &mut rng);
        let adaptor = SpaceAdaptor::between(gi.base(), &gt).unwrap();
        let yt = adaptor.apply(&yi);
        // Even inverting the *target* space exactly leaves the noise floor.
        let best_effort = gt.invert_clean(&yt);
        let residual = norms::rms_difference(&best_effort, &x);
        assert!(residual > 0.2, "noise floor should persist, got {residual}");
    }
}
