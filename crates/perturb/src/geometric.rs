//! The full geometric perturbation `G(X) = R·X + Ψ + Δ`.

use crate::noise::NoiseSpec;
use crate::params::Perturbation;
use rand::Rng;
use sap_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A geometric perturbation: affine part `(R, t)` plus an i.i.d. noise
/// component specification.
///
/// The affine part is deterministic once sampled; the noise matrix `Δ` is
/// drawn per perturbation call (and returned, because the privacy metrics
/// need the *realized* noise to evaluate exact reconstructions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeometricPerturbation {
    base: Perturbation,
    noise: NoiseSpec,
}

impl GeometricPerturbation {
    /// Combines an affine perturbation with a noise spec.
    pub fn new(base: Perturbation, noise: NoiseSpec) -> Self {
        GeometricPerturbation { base, noise }
    }

    /// Samples a fully random perturbation of dimension `d` with noise level
    /// `sigma`.
    ///
    /// # Panics
    ///
    /// Panics when `d == 0` or `sigma < 0`.
    pub fn random<R: Rng + ?Sized>(d: usize, sigma: f64, rng: &mut R) -> Self {
        GeometricPerturbation {
            base: Perturbation::random(d, rng),
            noise: NoiseSpec::new(sigma),
        }
    }

    /// The affine `(R, t)` part.
    pub fn base(&self) -> &Perturbation {
        &self.base
    }

    /// The noise specification.
    pub fn noise(&self) -> NoiseSpec {
        self.noise
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.base.dim()
    }

    /// Perturbs a `d × N` dataset: returns `(Y, Δ)` with
    /// `Y = R·X + Ψ + Δ`. The realized noise is returned so tests and
    /// privacy metrics can reason about exact recovery.
    ///
    /// # Panics
    ///
    /// Panics when `x.rows() != self.dim()`.
    pub fn perturb<R: Rng + ?Sized>(&self, x: &Matrix, rng: &mut R) -> (Matrix, Matrix) {
        let delta = self.noise.sample(x.rows(), x.cols(), rng);
        (self.perturb_with(x, &delta), delta)
    }

    /// Perturbs with a caller-supplied noise matrix (the protocol uses a
    /// *common noise component* across providers; see the brief's Section 3).
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn perturb_with(&self, x: &Matrix, delta: &Matrix) -> Matrix {
        assert_eq!(delta.shape(), x.shape(), "noise shape mismatch");
        let affine = self.base.apply_clean(x);
        &affine + delta
    }

    /// Perturbs records `cols` of the `d × N` dataset `x` with the
    /// realized noise `delta`, filling the reusable scratch `out` with
    /// `G(x)` **record-major** (`cols.len() × d`; previous contents are
    /// discarded).
    ///
    /// This is the streaming data plane's send-side kernel: a provider
    /// perturbs one row-block at a time, overlapping the math with the
    /// transport. Element order matches [`GeometricPerturbation::perturb_with`]
    /// exactly (`(R·x + Ψ) + Δ`), so the streamed bytes are bit-identical
    /// to perturbing the whole matrix up front.
    ///
    /// Rotate, shift and noise are **fused into one pass** per record:
    /// each output element is produced by one ascending-`k` rotation
    /// accumulation (zero factors skipped) followed immediately by
    /// `+ t[i] + Δ[i][j]` — one read of the inputs, one write of the
    /// output, no intermediate buffer and none of the staged path's
    /// per-element `pos/d`, `pos%d` noise-index arithmetic. `f64`
    /// addition is left-associative, so `acc + t + δ` is the exact
    /// `(acc + t) + δ` the staged reference
    /// ([`GeometricPerturbation::perturb_records_staged_into`]) computes;
    /// `tests/kernel_equivalence.rs` property-tests the two bit-equal.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch or an out-of-bounds column range.
    pub fn perturb_records_into(
        &self,
        x: &Matrix,
        delta: &Matrix,
        cols: std::ops::Range<usize>,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(delta.shape(), x.shape(), "noise shape mismatch");
        let d = self.dim();
        assert_eq!(x.rows(), d, "dataset dimensionality mismatch");
        assert!(cols.end <= x.cols(), "column range out of bounds");
        let n = x.cols();
        let data = x.as_slice();
        let noise = delta.as_slice();
        let rotation = self.base.rotation();
        let t = self.base.translation();
        out.clear();
        out.reserve(cols.len() * d);
        for j in cols {
            for i in 0..d {
                let mut acc = 0.0;
                for (k, &a) in rotation.row(i).iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * data[k * n + j];
                }
                out.push(acc + t[i] + noise[i * n + j]);
            }
        }
    }

    /// The staged reference for [`GeometricPerturbation::perturb_records_into`]:
    /// affine pass into `out`
    /// ([`Perturbation::apply_clean_records_into`](crate::params::Perturbation::apply_clean_records_into)),
    /// then a second pass adding the noise. Kept as the pinned spec the
    /// fused kernel is property-tested and benchmarked against.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch or an out-of-bounds column range.
    pub fn perturb_records_staged_into(
        &self,
        x: &Matrix,
        delta: &Matrix,
        cols: std::ops::Range<usize>,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(delta.shape(), x.shape(), "noise shape mismatch");
        let d = self.dim();
        let n = x.cols();
        let start = cols.start;
        self.base.apply_clean_records_into(x, cols, out);
        let noise = delta.as_slice();
        for (pos, v) in out.iter_mut().enumerate() {
            let (rec, feat) = (pos / d, pos % d);
            *v += noise[feat * n + (start + rec)];
        }
    }

    /// Best-effort inversion without the noise realization:
    /// `X̂ = R⁻¹(Y − Ψ)`. The residual is the rotated noise `R⁻¹Δ`.
    ///
    /// # Panics
    ///
    /// Panics when `y.rows() != self.dim()`.
    pub fn invert_affine(&self, y: &Matrix) -> Matrix {
        self.base.invert_clean(y)
    }

    /// Exact inversion given the realized noise: `X = R⁻¹(Y − Ψ − Δ)`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn invert_exact(&self, y: &Matrix, delta: &Matrix) -> Matrix {
        let denoised = y - delta;
        self.base.invert_clean(&denoised)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::{norms, randn_matrix};

    #[test]
    fn noiseless_perturbation_roundtrips_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = GeometricPerturbation::random(4, 0.0, &mut rng);
        let x = randn_matrix(4, 30, &mut rng);
        let (y, delta) = g.perturb(&x, &mut rng);
        assert_eq!(delta, Matrix::zeros(4, 30));
        assert!(g.invert_affine(&y).approx_eq(&x, 1e-9));
    }

    #[test]
    fn noisy_perturbation_exact_inverse_needs_delta() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = GeometricPerturbation::random(4, 0.1, &mut rng);
        let x = randn_matrix(4, 50, &mut rng);
        let (y, delta) = g.perturb(&x, &mut rng);

        let exact = g.invert_exact(&y, &delta);
        assert!(exact.approx_eq(&x, 1e-9), "exact inversion fails");

        let affine_only = g.invert_affine(&y);
        let residual = norms::rms_difference(&affine_only, &x);
        assert!(
            (residual - 0.1).abs() < 0.03,
            "affine-only residual {residual} should be ~sigma (rotation preserves noise scale)"
        );
    }

    #[test]
    fn distances_preserved_up_to_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = GeometricPerturbation::random(3, 0.0, &mut rng);
        let x = randn_matrix(3, 20, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);
        for i in 0..5 {
            for j in 0..5 {
                let dx = sap_linalg::vecops::dist2(&x.column(i), &x.column(j));
                let dy = sap_linalg::vecops::dist2(&y.column(i), &y.column(j));
                assert!((dx - dy).abs() < 1e-9, "distance not preserved");
            }
        }
    }

    #[test]
    fn common_noise_component_shared_across_parties() {
        // Two providers using the same Δ produce consistent joint data.
        let mut rng = StdRng::seed_from_u64(4);
        let x = randn_matrix(3, 10, &mut rng);
        let delta = NoiseSpec::new(0.05).sample(3, 10, &mut rng);
        let g1 = GeometricPerturbation::random(3, 0.05, &mut rng);
        let g2 = GeometricPerturbation::random(3, 0.05, &mut rng);
        let y1 = g1.perturb_with(&x, &delta);
        let y2 = g2.perturb_with(&x, &delta);
        // Same data, same noise, different spaces: inverting each affine part
        // and subtracting the known noise recovers the same X.
        let x1 = g1.invert_exact(&y1, &delta);
        let x2 = g2.invert_exact(&y2, &delta);
        assert!(x1.approx_eq(&x2, 1e-9));
    }

    /// Streaming a perturbation block by block must produce the exact
    /// bytes the monolithic path produces — the send-side half of the
    /// data-plane equivalence guarantee.
    #[test]
    fn perturb_records_bit_identical_to_perturb_with() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = 4;
        let n = 97;
        let g = GeometricPerturbation::random(d, 0.1, &mut rng);
        let x = randn_matrix(d, n, &mut rng);
        let delta = NoiseSpec::new(0.1).sample(d, n, &mut rng);
        let whole = g.perturb_with(&x, &delta);
        let mut scratch = Vec::new();
        for block in [1usize, 13, n, n + 5] {
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + block).min(n);
                g.perturb_records_into(&x, &delta, j0..j1, &mut scratch);
                for (r, rec) in scratch.chunks_exact(d).enumerate() {
                    for (i, v) in rec.iter().enumerate() {
                        assert_eq!(
                            v.to_bits(),
                            whole[(i, j0 + r)].to_bits(),
                            "block={block} col={} feature={i}",
                            j0 + r
                        );
                    }
                }
                j0 = j1;
            }
        }
    }

    /// The fused rotate+shift+noise kernel must produce the exact bytes
    /// of the two-pass staged reference it replaced.
    #[test]
    fn fused_records_bit_identical_to_staged() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = 5;
        let n = 61;
        let g = GeometricPerturbation::random(d, 0.2, &mut rng);
        let x = randn_matrix(d, n, &mut rng);
        let delta = NoiseSpec::new(0.2).sample(d, n, &mut rng);
        let (mut fused, mut staged) = (Vec::new(), Vec::new());
        for block in [1usize, 7, n] {
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + block).min(n);
                g.perturb_records_into(&x, &delta, j0..j1, &mut fused);
                g.perturb_records_staged_into(&x, &delta, j0..j1, &mut staged);
                let fused_bits: Vec<u64> = fused.iter().map(|v| v.to_bits()).collect();
                let staged_bits: Vec<u64> = staged.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fused_bits, staged_bits, "block={block} j0={j0}");
                j0 = j1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "noise shape mismatch")]
    fn shape_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = GeometricPerturbation::random(3, 0.1, &mut rng);
        let x = randn_matrix(3, 10, &mut rng);
        let bad = Matrix::zeros(3, 9);
        let _ = g.perturb_with(&x, &bad);
    }
}
