//! The additive noise component `Δ`.
//!
//! The paper specifies "a noise matrix with i.i.d. elements, which is used
//! to perturb distances"; following the companion SDM'07 paper we use
//! zero-mean Gaussians with a configurable standard deviation. The noise
//! level is the knob that trades residual privacy (against distance-
//! inference attacks) for model accuracy — swept in the ablation benches.

use rand::Rng;
use sap_linalg::{randn, Matrix};
use serde::{Deserialize, Serialize};

/// Specification of the i.i.d. noise component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Standard deviation of each element of `Δ`. Zero disables noise.
    pub sigma: f64,
}

impl NoiseSpec {
    /// Creates a noise spec.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is negative or non-finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
        NoiseSpec { sigma }
    }

    /// The no-noise spec.
    pub fn none() -> Self {
        NoiseSpec { sigma: 0.0 }
    }

    /// `true` when this spec adds no noise.
    pub fn is_none(&self) -> bool {
        self.sigma == 0.0
    }

    /// Draws a `d × n` noise matrix `Δ`.
    pub fn sample<R: Rng + ?Sized>(&self, d: usize, n: usize, rng: &mut R) -> Matrix {
        if self.is_none() {
            Matrix::zeros(d, n)
        } else {
            Matrix::from_fn(d, n, |_, _| self.sigma * randn(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::vecops;

    #[test]
    fn zero_sigma_is_zero_matrix() {
        let mut rng = StdRng::seed_from_u64(1);
        let delta = NoiseSpec::none().sample(3, 7, &mut rng);
        assert_eq!(delta, Matrix::zeros(3, 7));
        assert!(NoiseSpec::none().is_none());
    }

    #[test]
    fn sampled_noise_has_requested_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = NoiseSpec::new(0.25);
        let delta = spec.sample(10, 2000, &mut rng);
        let sd = vecops::std_dev(delta.as_slice());
        assert!((sd - 0.25).abs() < 0.01, "std {sd}");
        let mean = vecops::mean(delta.as_slice());
        assert!(mean.abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "sigma must be >= 0")]
    fn negative_sigma_panics() {
        let _ = NoiseSpec::new(-0.1);
    }
}
