//! The noise-free perturbation parameters `G : (R, t)`.

use rand::{Rng, RngExt};
use sap_linalg::orthogonal::random_orthogonal;
use sap_linalg::{lu, LinalgError, Matrix, Result};
use serde::{Deserialize, Serialize};

/// A rotation + translation pair `(R, t)` defining the affine part of a
/// geometric perturbation: `x ↦ R·x + t`.
///
/// Applied to a `d × N` dataset this is `Y = R·X + Ψ` with `Ψ = t·1ᵀ`.
/// The paper writes the pair as `Gᵢ : (Rᵢ, tᵢ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Perturbation {
    rotation: Matrix,
    translation: Vec<f64>,
}

impl Perturbation {
    /// Creates a perturbation from explicit parameters.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] when `rotation` is not square.
    /// * [`LinalgError::ShapeMismatch`] when `translation.len()` differs from
    ///   the rotation dimension.
    /// * [`LinalgError::InvalidDimension`] when `rotation` is not orthogonal
    ///   within `1e-8` (the protocol's correctness depends on `R⁻¹ = Rᵀ`
    ///   being meaningful).
    pub fn new(rotation: Matrix, translation: Vec<f64>) -> Result<Self> {
        if !rotation.is_square() {
            return Err(LinalgError::NotSquare {
                shape: rotation.shape(),
            });
        }
        if translation.len() != rotation.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "perturbation translation",
                lhs: rotation.shape(),
                rhs: (translation.len(), 1),
            });
        }
        if !rotation.is_orthogonal(1e-8) {
            return Err(LinalgError::InvalidDimension {
                reason: "perturbation rotation must be orthogonal",
            });
        }
        Ok(Perturbation {
            rotation,
            translation,
        })
    }

    /// Samples a random perturbation: Haar-orthogonal `R`, `t ~ U[−1, 1]^d`
    /// (the paper's distribution for the translation).
    ///
    /// # Panics
    ///
    /// Panics when `d == 0`.
    pub fn random<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Self {
        let rotation = random_orthogonal(d, rng);
        let translation = (0..d).map(|_| rng.random_range(-1.0..1.0)).collect();
        Perturbation {
            rotation,
            translation,
        }
    }

    /// Rotation-only perturbation (`t = 0`) — the random-rotation baseline
    /// of Chen & Liu's ICDM'05 paper (reference \[1\] of the brief), used by
    /// the ablation benches.
    ///
    /// # Panics
    ///
    /// Panics when `d == 0`.
    pub fn rotation_only<R: Rng + ?Sized>(d: usize, rng: &mut R) -> Self {
        Perturbation {
            rotation: random_orthogonal(d, rng),
            translation: vec![0.0; d],
        }
    }

    /// Identity perturbation (`R = I`, `t = 0`); useful as a baseline.
    pub fn identity(d: usize) -> Self {
        Perturbation {
            rotation: Matrix::identity(d),
            translation: vec![0.0; d],
        }
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.rotation.rows()
    }

    /// The rotation matrix `R`.
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// The translation vector `t`.
    pub fn translation(&self) -> &[f64] {
        &self.translation
    }

    /// The translation as the paper's `d × N` matrix `Ψ = t·1ᵀ`.
    pub fn translation_matrix(&self, n: usize) -> Matrix {
        Matrix::from_fn(self.dim(), n, |r, _| self.translation[r])
    }

    /// Applies the affine map to records `cols` of a `d × N` dataset,
    /// filling `out` with the results **record-major** (one record per
    /// row, `cols.len() × d`) — the layout the streaming data plane's
    /// wire blocks use. `out` is a reusable scratch buffer: it is cleared
    /// first (previous contents are discarded) and never re-allocated
    /// once its capacity has grown to one block.
    ///
    /// Each output element is accumulated exactly like [`Matrix::matmul`]
    /// restricted to those columns (ascending `k`, zero left-factors
    /// skipped, translation added last), so streaming a dataset block by
    /// block produces values **bit-identical** to perturbing the whole
    /// matrix at once with [`Perturbation::apply_clean`].
    ///
    /// # Panics
    ///
    /// Panics when `x.rows() != self.dim()` or `cols.end > x.cols()`.
    pub fn apply_clean_records_into(
        &self,
        x: &Matrix,
        cols: std::ops::Range<usize>,
        out: &mut Vec<f64>,
    ) {
        let d = self.dim();
        assert_eq!(x.rows(), d, "dataset dimensionality mismatch");
        assert!(cols.end <= x.cols(), "column range out of bounds");
        let n = x.cols();
        let data = x.as_slice();
        out.clear();
        out.reserve(cols.len() * d);
        for j in cols {
            for i in 0..d {
                let mut acc = 0.0;
                for (k, &a) in self.rotation.row(i).iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * data[k * n + j];
                }
                out.push(acc + self.translation[i]);
            }
        }
    }

    /// Applies the affine map to a `d × N` dataset: `R·X + Ψ` (no noise).
    ///
    /// # Panics
    ///
    /// Panics when `x.rows() != self.dim()`.
    pub fn apply_clean(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.dim(), "dataset dimensionality mismatch");
        let rx = self.rotation.matmul(x).expect("shapes checked");
        Matrix::from_fn(rx.rows(), rx.cols(), |r, c| {
            rx[(r, c)] + self.translation[r]
        })
    }

    /// Inverts the affine map: `R⁻¹·(Y − Ψ)`. For noisy data this returns
    /// the original plus rotated noise.
    ///
    /// # Panics
    ///
    /// Panics when `y.rows() != self.dim()`.
    pub fn invert_clean(&self, y: &Matrix) -> Matrix {
        assert_eq!(y.rows(), self.dim(), "dataset dimensionality mismatch");
        let shifted = Matrix::from_fn(y.rows(), y.cols(), |r, c| y[(r, c)] - self.translation[r]);
        // R is orthogonal: R⁻¹ = Rᵀ.
        self.rotation
            .transpose()
            .matmul(&shifted)
            .expect("shapes checked")
    }

    /// The inverse rotation `R⁻¹`. Computed via LU to stay meaningful if a
    /// caller constructs a slightly non-orthogonal perturbation through
    /// serde; falls back to the transpose when inversion fails numerically.
    pub fn rotation_inverse(&self) -> Matrix {
        lu::inverse(&self.rotation).unwrap_or_else(|_| self.rotation.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::randn_matrix;

    #[test]
    fn random_is_valid_and_deterministic() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let pa = Perturbation::random(4, &mut a);
        let pb = Perturbation::random(4, &mut b);
        assert_eq!(pa, pb);
        assert!(pa.rotation().is_orthogonal(1e-9));
        assert!(pa.translation().iter().all(|&t| (-1.0..=1.0).contains(&t)));
    }

    #[test]
    fn apply_invert_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = Perturbation::random(5, &mut rng);
        let x = randn_matrix(5, 40, &mut rng);
        let y = p.apply_clean(&x);
        let back = p.invert_clean(&y);
        assert!(back.approx_eq(&x, 1e-9));
    }

    #[test]
    fn translation_matrix_broadcasts() {
        let p = Perturbation::new(Matrix::identity(2), vec![0.5, -0.25]).unwrap();
        let psi = p.translation_matrix(3);
        assert_eq!(psi.shape(), (2, 3));
        assert_eq!(psi[(0, 2)], 0.5);
        assert_eq!(psi[(1, 0)], -0.25);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = randn_matrix(3, 10, &mut rng);
        let p = Perturbation::identity(3);
        assert!(p.apply_clean(&x).approx_eq(&x, 1e-12));
    }

    #[test]
    fn new_rejects_bad_params() {
        assert!(Perturbation::new(Matrix::zeros(2, 3), vec![0.0; 2]).is_err());
        assert!(Perturbation::new(Matrix::identity(2), vec![0.0; 3]).is_err());
        // Non-orthogonal rotation rejected.
        let shear = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
        assert!(Perturbation::new(shear, vec![0.0; 2]).is_err());
    }

    #[test]
    fn rotation_inverse_matches_transpose() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = Perturbation::random(6, &mut rng);
        assert!(p
            .rotation_inverse()
            .approx_eq(&p.rotation().transpose(), 1e-8));
    }

    #[test]
    fn apply_clean_rotates_and_shifts() {
        // 90° rotation + shift: (1,0) -> (0,1) + (1,1) = (1,2).
        let r = Matrix::from_rows(&[vec![0.0, -1.0], vec![1.0, 0.0]]);
        let p = Perturbation::new(r, vec![1.0, 1.0]).unwrap();
        let x = Matrix::from_columns(&[vec![1.0, 0.0]]);
        let y = p.apply_clean(&x);
        assert!((y[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((y[(1, 0)] - 2.0).abs() < 1e-12);
    }
}
