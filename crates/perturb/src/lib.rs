//! Geometric data perturbation and space adaptation.
//!
//! Implements the perturbation family of the PODC'07 brief:
//!
//! > We define a geometric perturbation as a combination of random rotation
//! > perturbation, random translation perturbation, and noise addition. It
//! > can be represented as `G(X) = R·X + Ψ + Δ`, where `X` denotes the
//! > normalized original dataset with `N` rows and `d` columns, `R` is a
//! > `d × d` random orthogonal matrix, `Ψ = t·1ᵀ` with `t` uniform over
//! > `[−1, 1]`, and `Δ` is a noise matrix with i.i.d. elements.
//!
//! and the *space adaptor* machinery of Section 3: for a provider space
//! `Gᵢ : (Rᵢ, tᵢ)` and target space `G_t : (R_t, t_t)`,
//!
//! ```text
//! Y_{i→t} = R_t·Rᵢ⁻¹·Yᵢ + (Ψ_t − R_t·Rᵢ⁻¹·Ψᵢ) − R_t·Rᵢ⁻¹·Δᵢ
//!           └────┬────┘   └────────┬─────────┘   └─────┬─────┘
//!           rotation          translation        complementary
//!           adaptor R_it      adaptor Ψ_it       noise Δ_it
//! ```
//!
//! Applying the adaptor `⟨R_it, Ψ_it⟩` to the perturbed dataset lands the
//! data in the target space *while inheriting the original noise component*
//! (the complementary noise cannot be removed without knowing `Δᵢ` — which is
//! exactly why forwarding adaptors through the coordinator leaks nothing
//! about the raw data).
//!
//! # Module map
//!
//! * [`params::Perturbation`] — the noise-free `(R, t)` pair.
//! * [`noise`] — i.i.d. Gaussian noise matrices `Δ`.
//! * [`geometric::GeometricPerturbation`] — the full `G(X) = RX + Ψ + Δ`.
//! * [`adaptor::SpaceAdaptor`] — `⟨R_it, Ψ_it⟩` between two spaces.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sap_perturb::{GeometricPerturbation, Perturbation, SpaceAdaptor};
//! use sap_linalg::randn_matrix;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let x = randn_matrix(4, 50, &mut rng); // d × N dataset
//!
//! let g_i = GeometricPerturbation::random(4, 0.05, &mut rng);
//! let (y_i, _delta) = g_i.perturb(&x, &mut rng);
//!
//! let g_t = Perturbation::random(4, &mut rng); // target space, no noise
//! let adaptor = SpaceAdaptor::between(g_i.base(), &g_t).unwrap();
//! let y_t = adaptor.apply(&y_i);
//!
//! // y_t equals G_t(x) up to the inherited (rotated) noise.
//! let clean_t = g_t.apply_clean(&x);
//! assert!(sap_linalg::norms::rms_difference(&y_t, &clean_t) < 0.2);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptor;
pub mod additive;
pub mod geometric;
pub mod noise;
pub mod params;

pub use adaptor::SpaceAdaptor;
pub use additive::AdditivePerturbation;
pub use geometric::GeometricPerturbation;
pub use params::Perturbation;
