//! An executable model of Chord-style ring maintenance, checked against
//! the invariants of Zave's *How to Make Chord Correct* (PAPERS.md).
//!
//! The live fleet keeps a full membership view per node (every node
//! shares one liveness plane, so joins, leaves, and deaths reach
//! everyone), and its placement ring is the ideal one —
//! [`crate::ring::HashRing`] over the alive set. What has to be
//! *proven* is the decentralized repair protocol such a view converges
//! by when nodes learn of churn at different times: joins start as
//! appendages, successor lists heal around crashed members, and
//! predecessor pointers rectify. This module models exactly that
//! protocol — per-node successor lists and predecessor pointers with
//! Chord's stabilize / rectify / flush rules — and exposes Zave's
//! invariants as executable checkers:
//!
//! 1. **At most one ring** — the first-live-successor graph has exactly
//!    one cycle ([`Violation::MultipleRings`]).
//! 2. **Ordered ring** — walking the cycle visits identifiers in
//!    rotated ascending order ([`Violation::UnorderedRing`]).
//! 3. **Connected appendages** — every node reaches the cycle by
//!    following successors; a node with no live successor is
//!    disconnected ([`Violation::Disconnected`]).
//! 4. **One owner per key** — after stabilization every key has
//!    exactly one owner (the successor of its point), and lookup from
//!    every start agrees ([`Violation::OwnerMismatch`],
//!    [`Violation::LookupMismatch`]).
//!
//! `tests/fleet_ring.rs` drives randomized join/leave/crash/lookup
//! histories through [`run_history`] and, on failure, shrinks to a
//! minimal violating history with [`shrink_history`] (the vendored
//! proptest shim does not shrink).

use std::collections::{BTreeMap, HashMap, HashSet};

/// Successor-list length `r`. Zave's safety assumption: fewer than `r`
/// members crash between stabilization rounds; otherwise a node can
/// lose every successor it knows and the ring disconnects — a real
/// Chord limitation, not a model artifact. [`ChordModel::crash`]
/// refuses exactly the crashes that assumption excludes.
pub const SUCCESSOR_LIST_LEN: usize = 3;

/// One step of a membership history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChordOp {
    /// A node with this ring identifier joins (via a lookup through any
    /// current member), starting as an appendage of the ring.
    Join(u64),
    /// A member announces its departure; every node purges it at once
    /// (the fleet broadcasts `Leave` before shutting a node down).
    Leave(u64),
    /// A member vanishes silently (`kill -9`); survivors keep stale
    /// pointers to it until stabilization flushes them.
    Crash(u64),
    /// Run stabilization to a fixpoint, then require full convergence
    /// (all four invariants, including single ownership).
    Stabilize,
    /// Record a key for the ownership checks that follow every
    /// stabilization.
    Lookup(u64),
}

/// A violation of one of Zave's invariants, or a refusal to converge.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A node's successor list holds no live member: the node fell off
    /// the ring (more than `r − 1` crashes between stabilizations).
    Disconnected {
        /// The stranded node.
        node: u64,
    },
    /// The first-live-successor graph has more than one cycle.
    MultipleRings {
        /// Number of distinct cycles found.
        count: usize,
    },
    /// The unique cycle visits identifiers out of (rotated) order.
    UnorderedRing {
        /// The cycle, rotated to start at its smallest identifier.
        cycle: Vec<u64>,
    },
    /// Stabilization still had an appendage after reaching a fixpoint.
    Appendage {
        /// A node not on the cycle.
        node: u64,
    },
    /// A stabilized node's predecessor is not its cyclic predecessor.
    WrongPredecessor {
        /// The node with the bad pointer.
        node: u64,
        /// What it believes.
        got: Option<u64>,
        /// The true cyclic predecessor.
        want: u64,
    },
    /// A key is claimed by zero or several owners after stabilization.
    OwnerMismatch {
        /// The key.
        key: u64,
        /// Every node claiming `key ∈ (predecessor, self]`.
        claimed: Vec<u64>,
        /// The ideal owner (successor of the key).
        ideal: u64,
    },
    /// Lookup from some start disagrees with the ideal owner.
    LookupMismatch {
        /// The key.
        key: u64,
        /// Where the lookup started.
        start: u64,
        /// What the traversal returned.
        got: Option<u64>,
        /// The ideal owner.
        ideal: u64,
    },
    /// Stabilization failed to reach a fixpoint within the round cap.
    Unconverged {
        /// Rounds executed before giving up.
        rounds: usize,
    },
}

/// Per-node protocol state: what this node *believes* about the ring.
#[derive(Debug, Clone, PartialEq)]
struct NodeState {
    /// Successor list, best candidate first.
    successors: Vec<u64>,
    /// Predecessor pointer (`None` until notified).
    predecessor: Option<u64>,
}

/// `x ∈ (a, b)` clockwise on the identifier ring, both ends excluded.
/// `a == b` denotes the full circle minus the endpoint.
fn between(a: u64, x: u64, b: u64) -> bool {
    match a.cmp(&b) {
        std::cmp::Ordering::Equal => x != a,
        std::cmp::Ordering::Less => a < x && x < b,
        std::cmp::Ordering::Greater => x > a || x < b,
    }
}

/// The executable ring-maintenance model.
#[derive(Debug, Clone)]
pub struct ChordModel {
    nodes: BTreeMap<u64, NodeState>,
    r: usize,
}

impl ChordModel {
    /// An empty model with successor lists of length `r` (≥ 1).
    pub fn new(r: usize) -> ChordModel {
        ChordModel {
            nodes: BTreeMap::new(),
            r: r.max(1),
        }
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the model has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Live member identifiers, ascending.
    pub fn members(&self) -> Vec<u64> {
        self.nodes.keys().copied().collect()
    }

    /// The ideal owner of `key`: the first member at-or-after it,
    /// wrapping — Chord's `successor(key)`.
    pub fn ideal_owner(&self, key: u64) -> Option<u64> {
        self.nodes
            .range(key..)
            .next()
            .or_else(|| self.nodes.iter().next())
            .map(|(&n, _)| n)
    }

    /// A node joins. The first node bootstraps a one-node ring; later
    /// joiners set their successor by a lookup through the existing
    /// members and start as appendages (no predecessor, list of one).
    /// Returns `false` (no-op) if the identifier is already a member.
    pub fn join(&mut self, id: u64) -> bool {
        if self.nodes.contains_key(&id) {
            return false;
        }
        if self.nodes.is_empty() {
            self.nodes.insert(
                id,
                NodeState {
                    successors: vec![id],
                    predecessor: Some(id),
                },
            );
            return true;
        }
        let succ = match self.ideal_owner(id) {
            Some(s) => s,
            None => return false,
        };
        self.nodes.insert(
            id,
            NodeState {
                successors: vec![succ],
                predecessor: None,
            },
        );
        true
    }

    /// Whether removing `id` would strand a survivor (leave some node's
    /// successor list without a single live entry) — the situation
    /// Zave's "< r failures between stabilizations" assumption rules
    /// out.
    fn removal_strands(&self, id: u64) -> bool {
        self.nodes.iter().any(|(&n, st)| {
            n != id
                && !st
                    .successors
                    .iter()
                    .any(|s| *s != id && self.nodes.contains_key(s))
        })
    }

    /// Graceful departure: the member announces it, so every survivor
    /// purges it from lists and predecessor pointers immediately.
    /// Refused (`false`) for non-members, the last member, and
    /// departures that would strand a survivor.
    pub fn leave(&mut self, id: u64) -> bool {
        if !self.nodes.contains_key(&id) || self.nodes.len() == 1 || self.removal_strands(id) {
            return false;
        }
        self.nodes.remove(&id);
        for st in self.nodes.values_mut() {
            st.successors.retain(|&s| s != id);
            if st.predecessor == Some(id) {
                st.predecessor = None;
            }
        }
        true
    }

    /// Silent failure (`kill -9`): the member vanishes, survivors keep
    /// stale pointers until stabilization flushes them. Refused under
    /// the same conditions as [`ChordModel::leave`] — a crash that
    /// strands a survivor violates the protocol's stated assumption,
    /// not an invariant.
    pub fn crash(&mut self, id: u64) -> bool {
        if !self.nodes.contains_key(&id) || self.nodes.len() == 1 || self.removal_strands(id) {
            return false;
        }
        self.nodes.remove(&id);
        true
    }

    /// One stabilize/rectify pass for `n`. Returns whether any state
    /// changed.
    fn stabilize_node(&mut self, n: u64) -> bool {
        let Some(state) = self.nodes.get(&n).cloned() else {
            return false;
        };
        let mut changed = false;
        // Flush: the best *live* successor. An empty flushed list can
        // only mean n is alone (op guards refuse stranding removals).
        let mut s = state
            .successors
            .iter()
            .copied()
            .find(|e| self.nodes.contains_key(e))
            .unwrap_or(n);
        // Rectify toward s's predecessor when it sits between us.
        if let Some(p) = self.nodes.get(&s).and_then(|st| st.predecessor) {
            if p != n && self.nodes.contains_key(&p) && between(n, p, s) {
                s = p;
            }
        }
        // Reconcile: our list becomes s followed by s's list (flushed,
        // deduplicated, never ourselves), truncated to r.
        let mut list = vec![s];
        if let Some(sstate) = self.nodes.get(&s) {
            for &e in &sstate.successors {
                if list.len() >= self.r {
                    break;
                }
                if e != n && self.nodes.contains_key(&e) && !list.contains(&e) {
                    list.push(e);
                }
            }
        }
        if list != state.successors {
            if let Some(st) = self.nodes.get_mut(&n) {
                st.successors = list;
            }
            changed = true;
        }
        // Notify: s adopts us as predecessor if its pointer is unset,
        // dead, or further away.
        let adopt = match self.nodes.get(&s).and_then(|st| st.predecessor) {
            None => true,
            Some(p) if !self.nodes.contains_key(&p) => true,
            Some(p) => p != n && between(p, n, s),
        };
        if adopt && self.nodes.get(&s).and_then(|st| st.predecessor) != Some(n) {
            if let Some(st) = self.nodes.get_mut(&s) {
                st.predecessor = Some(n);
            }
            changed = true;
        }
        changed
    }

    /// Runs stabilization rounds (every node, ascending) to a fixpoint.
    /// Returns the rounds used, or [`Violation::Unconverged`] when the
    /// cap (`2·members + 4`) is exhausted — convergence within linear
    /// rounds is itself part of the protocol's contract.
    pub fn stabilize_all(&mut self) -> Result<usize, Violation> {
        let cap = 2 * self.nodes.len() + 4;
        for round in 1..=cap {
            let mut changed = false;
            let ids: Vec<u64> = self.nodes.keys().copied().collect();
            for n in ids {
                changed |= self.stabilize_node(n);
            }
            if !changed {
                return Ok(round);
            }
        }
        Err(Violation::Unconverged { rounds: cap })
    }

    /// First live entry of `n`'s successor list.
    fn live_successor(&self, n: u64) -> Option<u64> {
        self.nodes
            .get(&n)?
            .successors
            .iter()
            .copied()
            .find(|s| self.nodes.contains_key(s))
    }

    /// Chord lookup: walk successors from `start` until `key` falls in
    /// `(current, successor]`. Bounded by twice the member count;
    /// `None` when the walk exhausts (possible mid-churn, never after
    /// stabilization).
    pub fn lookup(&self, start: u64, key: u64) -> Option<u64> {
        let mut cur = start;
        for _ in 0..(2 * self.nodes.len() + 2) {
            let s = self.live_successor(cur)?;
            if s == cur {
                return Some(cur);
            }
            if between(cur, key, s) || key == s {
                return Some(s);
            }
            cur = s;
        }
        None
    }

    /// The cycles of the first-live-successor graph, each as a node
    /// sequence in walk order. Errors with [`Violation::Disconnected`]
    /// when some node has no live successor.
    fn cycles(&self) -> Result<Vec<Vec<u64>>, Violation> {
        let mut succ: BTreeMap<u64, u64> = BTreeMap::new();
        for &n in self.nodes.keys() {
            match self.live_successor(n) {
                Some(s) => {
                    succ.insert(n, s);
                }
                None => return Err(Violation::Disconnected { node: n }),
            }
        }
        let mut visited: HashSet<u64> = HashSet::new();
        let mut cycles = Vec::new();
        for &start in succ.keys() {
            if visited.contains(&start) {
                continue;
            }
            let mut path = Vec::new();
            let mut pos: HashMap<u64, usize> = HashMap::new();
            let mut cur = start;
            loop {
                if let Some(&i) = pos.get(&cur) {
                    cycles.push(path[i..].to_vec());
                    break;
                }
                if visited.contains(&cur) {
                    break; // merged into an already-explored walk
                }
                pos.insert(cur, path.len());
                path.push(cur);
                cur = succ[&cur];
            }
            visited.extend(path);
        }
        Ok(cycles)
    }

    /// The always-invariants, valid mid-churn: every node has a live
    /// successor, the successor graph has exactly one cycle, and that
    /// cycle is ordered. (Appendages are legal here — a joiner is one
    /// until stabilization splices it in.)
    pub fn check_ring(&self) -> Result<(), Violation> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        let cycles = self.cycles()?;
        if cycles.len() != 1 {
            return Err(Violation::MultipleRings {
                count: cycles.len(),
            });
        }
        let cycle = &cycles[0];
        if cycle.len() > 1 {
            let min_pos = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, &v)| v)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut rotated = cycle[min_pos..].to_vec();
            rotated.extend_from_slice(&cycle[..min_pos]);
            if !rotated.windows(2).all(|w| w[0] < w[1]) {
                return Err(Violation::UnorderedRing { cycle: rotated });
            }
        }
        Ok(())
    }

    /// The full post-stabilization contract: the cycle contains every
    /// member (no appendages), predecessors are the cyclic
    /// predecessors, and for each key in `keys` exactly one node claims
    /// it — the ideal owner — with lookup from every start agreeing.
    pub fn check_stable(&self, keys: &[u64]) -> Result<(), Violation> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        self.check_ring()?;
        let cycle: HashSet<u64> = self.cycles()?.remove(0).into_iter().collect();
        if let Some(&node) = self.nodes.keys().find(|n| !cycle.contains(n)) {
            return Err(Violation::Appendage { node });
        }
        let members = self.members();
        for (i, &n) in members.iter().enumerate() {
            let want = members[(i + members.len() - 1) % members.len()];
            let got = self.nodes[&n].predecessor;
            if got != Some(want) && members.len() > 1 {
                return Err(Violation::WrongPredecessor { node: n, got, want });
            }
        }
        for &key in keys {
            let Some(ideal) = self.ideal_owner(key) else {
                continue;
            };
            let claimed: Vec<u64> = members
                .iter()
                .copied()
                .filter(|&m| {
                    let pred = self.nodes[&m].predecessor.unwrap_or(m);
                    key == m || between(pred, key, m)
                })
                .collect();
            if claimed != vec![ideal] {
                return Err(Violation::OwnerMismatch {
                    key,
                    claimed,
                    ideal,
                });
            }
            for &start in &members {
                let got = self.lookup(start, key);
                if got != Some(ideal) {
                    return Err(Violation::LookupMismatch {
                        key,
                        start,
                        got,
                        ideal,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A replay failure: which step of the history broke which invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryFailure {
    /// Index into the history (`ops.len()` for the final convergence
    /// check appended by [`run_history`]).
    pub step: usize,
    /// The operation at that step.
    pub op: ChordOp,
    /// The invariant that broke.
    pub violation: Violation,
}

/// Replays a history through a fresh model: the always-invariants are
/// checked after **every** op, the full ownership contract after every
/// `Stabilize` and once more at the end. Keys recorded by `Lookup` ops
/// (plus every member identifier) feed the ownership checks.
pub fn run_history(r: usize, ops: &[ChordOp]) -> Result<(), HistoryFailure> {
    let mut model = ChordModel::new(r);
    let mut keys: Vec<u64> = vec![0, u64::MAX / 2, u64::MAX];
    let check_full = |model: &mut ChordModel, step: usize, op: ChordOp, keys: &[u64]| {
        let mut sample = keys.to_vec();
        sample.extend(model.members());
        model
            .stabilize_all()
            .and_then(|_| model.check_stable(&sample))
            .map_err(|violation| HistoryFailure {
                step,
                op,
                violation,
            })
    };
    for (step, &op) in ops.iter().enumerate() {
        match op {
            ChordOp::Join(id) => {
                model.join(id);
            }
            ChordOp::Leave(id) => {
                model.leave(id);
            }
            ChordOp::Crash(id) => {
                model.crash(id);
            }
            ChordOp::Lookup(key) => keys.push(key),
            ChordOp::Stabilize => check_full(&mut model, step, op, &keys)?,
        }
        model.check_ring().map_err(|violation| HistoryFailure {
            step,
            op,
            violation,
        })?;
    }
    check_full(&mut model, ops.len(), ChordOp::Stabilize, &keys)
}

/// Greedy delta-debugging shrink: repeatedly drops single ops while the
/// predicate still fails, to a fixpoint. The vendored proptest shim has
/// no shrinking, so violating histories are minimized here before being
/// reported. The predicate returns `true` when a history *fails*.
pub fn shrink_history(ops: &[ChordOp], fails: impl Fn(&[ChordOp]) -> bool) -> Vec<ChordOp> {
    let mut best = ops.to_vec();
    if !fails(&best) {
        return best;
    }
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if fails(&candidate) {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(ids: &[u64]) -> ChordModel {
        let mut m = ChordModel::new(SUCCESSOR_LIST_LEN);
        for &id in ids {
            assert!(m.join(id));
        }
        m.stabilize_all().unwrap();
        m
    }

    #[test]
    fn bootstrap_and_joins_converge() {
        let m = ring_of(&[50, 10, 30, 90, 70]);
        let keys: Vec<u64> = (0..100).map(|i| i * 997).collect();
        m.check_stable(&keys).unwrap();
        assert_eq!(m.ideal_owner(15), Some(30));
        assert_eq!(m.ideal_owner(95), Some(10), "wraps past the top");
    }

    #[test]
    fn appendage_is_legal_until_stabilized_then_spliced() {
        let mut m = ring_of(&[10, 20, 30]);
        m.join(25);
        // Mid-churn: one ring, the joiner hangs off it.
        m.check_ring().unwrap();
        assert!(matches!(
            m.check_stable(&[]),
            Err(Violation::Appendage { node: 25 } | Violation::WrongPredecessor { .. })
        ));
        m.stabilize_all().unwrap();
        m.check_stable(&[5, 15, 22, 27, 95]).unwrap();
    }

    #[test]
    fn crashes_heal_within_the_successor_budget() {
        let mut m = ring_of(&[10, 20, 30, 40, 50, 60]);
        // r = 3 tolerates two silent failures between stabilizations.
        assert!(m.crash(20));
        assert!(m.crash(30));
        m.check_ring().unwrap();
        m.stabilize_all().unwrap();
        m.check_stable(&[15, 25, 35, 45]).unwrap();
        assert_eq!(m.ideal_owner(25), Some(40));
    }

    #[test]
    fn stranding_crashes_are_refused() {
        let mut m = ring_of(&[10, 20, 30]);
        assert!(m.crash(20));
        // 30 is now 10's only live successor (and vice versa): killing
        // it would strand the other — the model refuses, mirroring the
        // protocol's < r-failures assumption.
        assert!(!m.crash(30) || !m.crash(10));
        assert!(m.len() >= 2 || m.check_ring().is_ok());
    }

    #[test]
    fn graceful_leave_purges_immediately() {
        let mut m = ring_of(&[10, 20, 30, 40]);
        assert!(m.leave(30));
        m.check_ring().unwrap();
        m.stabilize_all().unwrap();
        m.check_stable(&[25, 35]).unwrap();
        assert_eq!(m.ideal_owner(25), Some(40));
    }

    #[test]
    fn shrinker_minimizes_against_a_predicate() {
        // Synthetic predicate: a history "fails" iff it contains a
        // crash after a join. The minimal such history is two ops.
        let ops = vec![
            ChordOp::Join(1),
            ChordOp::Stabilize,
            ChordOp::Join(2),
            ChordOp::Lookup(7),
            ChordOp::Crash(2),
            ChordOp::Stabilize,
        ];
        let fails = |h: &[ChordOp]| {
            let join = h.iter().position(|o| matches!(o, ChordOp::Join(_)));
            let crash = h.iter().rposition(|o| matches!(o, ChordOp::Crash(_)));
            matches!((join, crash), (Some(j), Some(c)) if j < c)
        };
        let minimal = shrink_history(&ops, fails);
        assert_eq!(minimal.len(), 2, "{minimal:?}");
        assert!(fails(&minimal));
    }

    #[test]
    fn run_history_accepts_a_churny_schedule() {
        let ops = vec![
            ChordOp::Join(100),
            ChordOp::Join(40),
            ChordOp::Stabilize,
            ChordOp::Join(70),
            ChordOp::Join(10),
            ChordOp::Lookup(55),
            ChordOp::Stabilize,
            ChordOp::Crash(40),
            ChordOp::Join(85),
            ChordOp::Stabilize,
            ChordOp::Leave(10),
            ChordOp::Lookup(3),
            ChordOp::Stabilize,
        ];
        run_history(SUCCESSOR_LIST_LEN, &ops).unwrap();
    }
}
