//! The placement ring: which node owns which session.
//!
//! Placement follows Chord's `successor(k)` rule: node indices and
//! session ids are hashed onto one 64-bit ring
//! ([`sap_core::placement::ring_point`]), and a session is owned by the
//! first node clockwise at-or-after its point. Every node computes the
//! same owner from the same membership view, so ownership needs no
//! coordination beyond membership itself.
//!
//! The fleet runtime holds a full membership view per node (all nodes
//! share one process and one liveness plane), so [`HashRing`] is the
//! *ideal* ring over the alive set. The decentralized repair protocol
//! that makes such a view converge under churn is modeled and
//! property-tested separately in [`crate::chord`]; its stabilized
//! ownership coincides with this ring's (`tests/fleet_ring.rs` pins
//! that agreement).

use sap_core::placement::{ring_point, session_point};
use sap_net::SessionId;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Salt mixed into node indices before hashing, so a node's ring point
/// never collides with the point of a session id equal to its index
/// (both spaces are dense small integers).
const NODE_SALT: u64 = 0x4E0D_E5A1_0000_0000;

/// A fleet node's point on the placement ring.
pub fn node_point(node: usize) -> u64 {
    ring_point(node as u64 ^ NODE_SALT)
}

/// A consistent-hashing ring over fleet node indices.
///
/// Rebuilt from the membership view on demand — the ring is a pure
/// function of the alive set, never incrementally mutated state that
/// could drift from it.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    points: BTreeMap<u64, usize>,
}

impl HashRing {
    /// Builds the ring of the given members.
    pub fn from_members(members: impl IntoIterator<Item = usize>) -> HashRing {
        HashRing {
            points: members.into_iter().map(|n| (node_point(n), n)).collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: usize) -> bool {
        self.points.get(&node_point(node)) == Some(&node)
    }

    /// The owner of a ring point: the first member at-or-after it,
    /// wrapping (Chord's `successor(k)`). `None` on an empty ring.
    pub fn owner_of_point(&self, point: u64) -> Option<usize> {
        self.points
            .range(point..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &n)| n)
    }

    /// The owner of a session.
    pub fn owner_of(&self, id: SessionId) -> Option<usize> {
        self.owner_of_point(session_point(id))
    }

    /// The ring successor of a member (wrapping; the member itself on a
    /// one-node ring). `None` when `node` is not a member.
    pub fn successor(&self, node: usize) -> Option<usize> {
        if !self.contains(node) {
            return None;
        }
        let p = node_point(node);
        self.points
            .range((Bound::Excluded(p), Bound::Unbounded))
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &n)| n)
    }

    /// Next hop when routing a frame from `from` toward `dest`:
    /// successor hops walk the whole ring, so they reach every member
    /// regardless of where the frame enters. A sender that is not (or
    /// no longer) a member short-circuits straight to `dest`. `None`
    /// when `dest` is not a member (the frame has nowhere to go).
    pub fn next_hop(&self, from: usize, dest: usize) -> Option<usize> {
        if !self.contains(dest) {
            return None;
        }
        if from == dest || !self.contains(from) {
            return Some(dest);
        }
        self.successor(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_total_and_stable() {
        let ring = HashRing::from_members(0..4);
        assert_eq!(ring.len(), 4);
        for raw in 1..200u64 {
            let owner = ring.owner_of(SessionId(raw)).unwrap();
            assert!(owner < 4);
            // Same id, same owner, every time.
            assert_eq!(ring.owner_of(SessionId(raw)), Some(owner));
        }
    }

    #[test]
    fn removal_only_moves_the_removed_nodes_keys() {
        let full = HashRing::from_members(0..4);
        let smaller = HashRing::from_members((0..4).filter(|&n| n != 2));
        for raw in 1..500u64 {
            let before = full.owner_of(SessionId(raw)).unwrap();
            let after = smaller.owner_of(SessionId(raw)).unwrap();
            if before != 2 {
                assert_eq!(before, after, "id {raw} moved without cause");
            } else {
                assert_ne!(after, 2);
            }
        }
    }

    #[test]
    fn successor_hops_visit_every_member() {
        let ring = HashRing::from_members(0..5);
        let mut seen = vec![0usize];
        let mut cur = 0;
        for _ in 0..5 {
            cur = ring.successor(cur).unwrap();
            seen.push(cur);
        }
        assert_eq!(cur, 0, "five hops must wrap a five-node ring");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn next_hop_reaches_dest() {
        let ring = HashRing::from_members(0..6);
        for from in 0..6 {
            for dest in 0..6 {
                let mut cur = from;
                let mut hops = 0;
                while cur != dest {
                    cur = ring.next_hop(cur, dest).unwrap();
                    hops += 1;
                    assert!(hops <= 6, "routing loop {from}->{dest}");
                }
            }
        }
        // Non-members short-circuit; unknown destinations fail.
        assert_eq!(ring.next_hop(99, 3), Some(3));
        assert_eq!(ring.next_hop(0, 99), None);
    }
}
