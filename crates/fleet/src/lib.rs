//! A sharded multi-node SAP fleet on one host.
//!
//! One [`sap_server::SapServer`] tops out at a single process: one
//! mesh, one pool, one registry. This crate scales the service *out*:
//! a [`Fleet`] runs `N` server nodes, each owning an arc of a
//! consistent-hash ring ([`ring::HashRing`]), connected by inter-node
//! TCP lanes (the PR 6 reactor transport, v4 envelope unchanged).
//!
//! * **Placement** — session ids are minted fleet-unique (per-node
//!   residue classes, [`sap_core::placement::IdMinter`]) and hashed
//!   onto the ring; the successor node owns the session (Chord's
//!   `successor(k)` rule). Every node computes the same owner from the
//!   same membership view.
//! * **Forwarding** — a client may submit through *any* node. A
//!   gateway that does not own the session seals the registration for
//!   the owner's inbox ([`wire`]) and sends it to its ring successor;
//!   intermediate muxes relay the sealed frames **without decoding**
//!   (the mux forwarding hook), and the owner admits the session and
//!   acks back. Outcomes are then awaited cross-node via
//!   [`Fleet::wait`].
//! * **Membership** — node heartbeats ride the PR 5 liveness plane
//!   under [`SessionId::LIVENESS`] on the inter-node lanes. A silent
//!   node is declared dead within the heartbeat budget; survivors drop
//!   it from the ring (repair is recomputing the pure placement
//!   function over the new view) and the origin re-places registrations
//!   the dead owner never acknowledged. Graceful leavers broadcast
//!   [`wire::FleetMsg::Leave`] and hand their unfinished sessions to
//!   the new owners via
//!   [`sap_server::SapServer::export_registrations`].
//!
//! The correctness core is test-first: the decentralized repair
//! protocol the membership view abstracts is modeled in [`chord`] and
//! property-checked against Zave's *How to Make Chord Correct*
//! invariants by `tests/fleet_ring.rs`; `tests/fleet_sessions.rs` pins
//! byte-identical [`SapOutcome`]s whether a session enters at its
//! owner or at a forwarding node, and typed fail-fast on `kill -9`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod chord;
pub mod ring;
pub mod wire;

use parking_lot::Mutex;
use ring::HashRing;
use sap_core::session::{SapConfig, SapOutcome};
use sap_core::SapError;
use sap_datasets::Dataset;
use sap_net::frame::open_frame;
use sap_net::mux::{MuxEndpoint, SessionMux};
use sap_net::tcp::{local_mesh_with, Backend, TcpLane, DEFAULT_CONNECT_WINDOW};
use sap_net::transport::Endpoint;
use sap_net::{Codec, PartyId, SessionId, Transport, TransportError, WireCodec};
use sap_server::{RetryPolicy, SapServer, ServerConfig, ServerError};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wire::FleetMsg;

pub use wire::{inbox_node, inbox_session, MAX_NODES};

/// Fleet-level failures.
#[derive(Debug)]
pub enum FleetError {
    /// The fleet configuration is unusable (zero nodes, too many).
    Config(String),
    /// The addressed node is not alive (never was, left, or died).
    NodeDown(usize),
    /// No live node remains to own the session.
    NoNodes,
    /// The session is not known to the fleet.
    UnknownSession(SessionId),
    /// The owning node refused the registration.
    Rejected {
        /// The refused session.
        session: SessionId,
        /// The owner's admission error, rendered.
        reason: String,
    },
    /// The caller's deadline elapsed before the session finished.
    Timeout(SessionId),
    /// An underlying server error (including typed session failures).
    Server(ServerError),
    /// Building the inter-node mesh failed.
    Mesh(std::io::Error),
    /// A transport error on the control plane.
    Transport(TransportError),
    /// Encoding or decoding a control message failed.
    Wire(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(why) => write!(f, "bad fleet config: {why}"),
            FleetError::NodeDown(n) => write!(f, "fleet node {n} is down"),
            FleetError::NoNodes => write!(f, "no live fleet nodes"),
            FleetError::UnknownSession(id) => write!(f, "unknown {id}"),
            FleetError::Rejected { session, reason } => {
                write!(f, "{session} rejected by its owner: {reason}")
            }
            FleetError::Timeout(id) => write!(f, "timed out waiting for {id}"),
            FleetError::Server(e) => write!(f, "server error: {e}"),
            FleetError::Mesh(e) => write!(f, "inter-node mesh failed: {e}"),
            FleetError::Transport(e) => write!(f, "control-plane transport: {e}"),
            FleetError::Wire(why) => write!(f, "control-plane codec: {why}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Node count (1 ≤ nodes ≤ [`MAX_NODES`]).
    pub nodes: usize,
    /// Per-node server template. `session_id_base` / `session_id_stride`
    /// are overwritten per node (residue-class minting), and
    /// `retry_policy.max_retries` is raised to at least 1 so every node
    /// retains session inputs for ownership handoffs.
    pub server: ServerConfig,
    /// Secret sealing the fleet control plane ([`wire::inbox_key`]).
    pub fleet_secret: u64,
    /// Inter-node TCP backend (reactor by default).
    pub backend: Backend,
    /// Node heartbeat interval on the inter-node liveness plane.
    pub heartbeat_interval: Duration,
    /// Missed-interval budget before a silent node is declared dead.
    pub liveness_misses: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: 2,
            server: ServerConfig::default(),
            fleet_secret: 0xF1EE_75EC,
            backend: Backend::Reactor,
            heartbeat_interval: sap_net::mux::DEFAULT_HEARTBEAT_INTERVAL,
            liveness_misses: sap_net::mux::DEFAULT_LIVENESS_MISSES,
        }
    }
}

impl FleetConfig {
    /// A test-shaped fleet: `nodes` nodes with a tight heartbeat so
    /// node deaths are detected in ~1 s instead of many seconds. The
    /// miss budget stays generous (20 × 50 ms): a loaded single-core
    /// test box can starve one emitter thread well past 150 ms, and a
    /// false node death is a much worse test outcome than detection
    /// taking a few hundred extra milliseconds.
    pub fn quick(nodes: usize) -> FleetConfig {
        FleetConfig {
            nodes,
            heartbeat_interval: Duration::from_millis(50),
            liveness_misses: 20,
            ..FleetConfig::default()
        }
    }
}

/// Aggregate fleet counters (summed over live nodes and husks of dead
/// or departed ones).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetMetrics {
    /// Nodes currently alive.
    pub nodes_alive: usize,
    /// Node deaths detected by the liveness plane.
    pub node_deaths_detected: u64,
    /// Sessions admitted, fleet-wide.
    pub sessions_started: u64,
    /// Sessions completed with an outcome, fleet-wide.
    pub sessions_completed: u64,
    /// Sessions that failed, fleet-wide.
    pub sessions_failed: u64,
    /// Registrations sent to a remote owner over the control plane.
    pub registrations_forwarded: u64,
    /// Registrations re-placed after their owner died, plus handoffs
    /// from graceful leavers.
    pub registrations_replaced: u64,
    /// Sealed control frames relayed by intermediate nodes without
    /// decoding (the mux forwarding hook).
    pub frames_forwarded: u64,
}

/// An un-acknowledged registration the origin retains for re-placement.
struct Pending {
    owner: usize,
    origin: usize,
    rejected: Option<String>,
    locals: Vec<Dataset>,
    config: SapConfig,
}

/// State shared by every node's service thread and the fleet handle.
struct Shared {
    secret: u64,
    alive: Mutex<BTreeSet<usize>>,
    /// Nodes that died silently (liveness-detected). Graceful leavers
    /// never enter this set.
    dead: Mutex<BTreeSet<usize>>,
    /// Nodes mid- (or post-) graceful departure; their deaths are
    /// expected and their husks still serve harvested outcomes.
    leaving: Mutex<BTreeSet<usize>>,
    /// session id → node that admitted it.
    placements: Mutex<HashMap<u64, usize>>,
    /// session id → registration awaiting the owner's ack.
    pending: Mutex<HashMap<u64, Pending>>,
    regs_forwarded: AtomicU64,
    regs_replaced: AtomicU64,
    deaths: AtomicU64,
}

impl Shared {
    fn ring(&self) -> HashRing {
        HashRing::from_members(self.alive.lock().iter().copied())
    }
}

/// One fleet node: a full SAP server (in-memory party mesh) plus its
/// inter-node lane mux and inbox.
struct FleetNode {
    index: usize,
    server: Arc<SapServer<Endpoint>>,
    mux: SessionMux<TcpLane>,
    inbox: Arc<MuxEndpoint<TcpLane>>,
    msg_ids: AtomicU64,
}

impl FleetNode {
    /// A fleet-unique control message id: node index in the high bits,
    /// a local counter below (also seeds sealing nonces — two nodes
    /// never collide).
    fn next_msg_id(&self) -> u64 {
        ((self.index as u64 + 1) << 40) | self.msg_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Routes a control message toward `dest` via this node's ring
    /// successor (intermediate nodes relay zero-decode).
    fn route_send(&self, shared: &Shared, dest: usize, msg: &FleetMsg) -> Result<(), FleetError> {
        let hop = shared
            .ring()
            .next_hop(self.index, dest)
            .ok_or(FleetError::NodeDown(dest))?;
        wire::send_via(
            &*self.inbox,
            shared.secret,
            PartyId(hop as u64),
            dest,
            self.next_msg_id(),
            msg,
        )
    }
}

/// A sharded multi-node SAP service: N server nodes, one placement
/// ring, one membership plane. See the crate docs for the moving parts.
pub struct Fleet {
    shared: Arc<Shared>,
    /// `nodes[j]` is `None` once node `j` was killed or left; its husk
    /// (still holding harvested outcomes) moves to `husks`.
    nodes: Mutex<Vec<Option<Arc<FleetNode>>>>,
    husks: Mutex<HashMap<usize, Arc<FleetNode>>>,
    services: Mutex<Vec<JoinHandle<()>>>,
    round_robin: AtomicUsize,
}

impl Fleet {
    /// Builds and starts a fleet: inter-node TCP lanes (full mesh, one
    /// per node), per-node servers over in-memory party meshes, node
    /// liveness, inbox service threads, and the forwarding hooks.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] for a bad node count, [`FleetError::Mesh`]
    /// for socket errors, [`FleetError::Server`] for server setup
    /// failures.
    pub fn in_memory(config: FleetConfig) -> Result<Fleet, FleetError> {
        let n = config.nodes;
        if n == 0 || n > MAX_NODES {
            return Err(FleetError::Config(format!(
                "node count {n} outside 1..={MAX_NODES}"
            )));
        }
        let ids: Vec<PartyId> = (0..n).map(|j| PartyId(j as u64)).collect();
        let lanes = local_mesh_with(&ids, config.backend).map_err(FleetError::Mesh)?;
        let shared = Arc::new(Shared {
            secret: config.fleet_secret,
            alive: Mutex::new((0..n).collect()),
            dead: Mutex::new(BTreeSet::new()),
            leaving: Mutex::new(BTreeSet::new()),
            placements: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            regs_forwarded: AtomicU64::new(0),
            regs_replaced: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
        });
        let mut nodes = Vec::with_capacity(n);
        let mut services = Vec::with_capacity(n);
        for (j, lane) in lanes.into_iter().enumerate() {
            let mux = SessionMux::new(lane);
            // Node liveness: the PR 5 plane, node-grained. Startup grace
            // covers the mesh's connect window; steady-state detection
            // is one heartbeat budget.
            let budget = config.heartbeat_interval * config.liveness_misses.max(1);
            mux.start_liveness_with_grace(
                ids.clone(),
                config.heartbeat_interval,
                config.liveness_misses,
                budget.max(DEFAULT_CONNECT_WINDOW),
            );
            // Forward frames for foreign inboxes one ring hop onward —
            // the pump relays the sealed bytes, never decoding them.
            {
                let shared = Arc::clone(&shared);
                mux.set_forwarder(move |_from, session, _payload| {
                    let dest = wire::inbox_node(session)?;
                    if dest == j {
                        return None;
                    }
                    shared
                        .ring()
                        .next_hop(j, dest)
                        .map(|hop| PartyId(hop as u64))
                });
            }
            let inbox = Arc::new(
                mux.open_session(wire::inbox_session(j))
                    .map_err(FleetError::Transport)?,
            );
            let server_config = ServerConfig {
                session_id_base: j as u64 + 1,
                session_id_stride: n as u64,
                retry_policy: RetryPolicy {
                    max_retries: config.server.retry_policy.max_retries.max(1),
                },
                ..config.server.clone()
            };
            let server = Arc::new(SapServer::in_memory(server_config).map_err(FleetError::Server)?);
            let node = Arc::new(FleetNode {
                index: j,
                server,
                mux,
                inbox,
                msg_ids: AtomicU64::new(1),
            });
            let (node2, shared2) = (Arc::clone(&node), Arc::clone(&shared));
            let handle = std::thread::Builder::new()
                .name(format!("fleet-node-{j}"))
                .spawn(move || service_loop(&node2, &shared2))
                .map_err(FleetError::Mesh)?;
            nodes.push(Some(node));
            services.push(handle);
        }
        Ok(Fleet {
            shared,
            nodes: Mutex::new(nodes),
            husks: Mutex::new(HashMap::new()),
            services: Mutex::new(services),
            round_robin: AtomicUsize::new(0),
        })
    }

    /// Indices of the nodes currently alive.
    pub fn alive(&self) -> Vec<usize> {
        self.shared.alive.lock().iter().copied().collect()
    }

    /// The node owning `id` under the current membership view.
    pub fn owner_of(&self, id: SessionId) -> Option<usize> {
        self.shared.ring().owner_of(id)
    }

    fn node(&self, j: usize) -> Option<Arc<FleetNode>> {
        self.nodes.lock().get(j)?.clone()
    }

    fn node_or_husk(&self, j: usize) -> Option<Arc<FleetNode>> {
        self.node(j).or_else(|| self.husks.lock().get(&j).cloned())
    }

    /// Submits a session through the next live gateway (round-robin).
    ///
    /// # Errors
    ///
    /// Everything [`Fleet::submit_via`] returns.
    pub fn submit(
        &self,
        locals: Vec<Dataset>,
        config: &SapConfig,
    ) -> Result<SessionId, FleetError> {
        let alive = self.alive();
        if alive.is_empty() {
            return Err(FleetError::NoNodes);
        }
        let gateway = alive[self.round_robin.fetch_add(1, Ordering::Relaxed) % alive.len()];
        self.submit_via(gateway, locals, config)
    }

    /// Submits a session through a **chosen** gateway node. The gateway
    /// mints the id (from its residue class), hashes it onto the ring,
    /// and either admits locally (it owns the session) or seals the
    /// registration toward the owner — relayed by intermediate nodes —
    /// and returns immediately; admission on a remote owner is
    /// asynchronous, surfaced by [`Fleet::wait`].
    ///
    /// # Errors
    ///
    /// [`FleetError::NodeDown`] for a dead gateway, [`FleetError::NoNodes`]
    /// on an empty ring, [`FleetError::Server`] for local admission
    /// failures, [`FleetError::Transport`] for control-plane send
    /// failures.
    pub fn submit_via(
        &self,
        gateway: usize,
        locals: Vec<Dataset>,
        config: &SapConfig,
    ) -> Result<SessionId, FleetError> {
        let node = self.node(gateway).ok_or(FleetError::NodeDown(gateway))?;
        if !self.shared.alive.lock().contains(&gateway) {
            return Err(FleetError::NodeDown(gateway));
        }
        let id = node.server.mint_session_id();
        let owner = self.shared.ring().owner_of(id).ok_or(FleetError::NoNodes)?;
        if owner == gateway {
            node.server
                .submit_placed(id, locals, config)
                .map_err(FleetError::Server)?;
            self.shared.placements.lock().insert(id.0, gateway);
            return Ok(id);
        }
        self.shared.pending.lock().insert(
            id.0,
            Pending {
                owner,
                origin: gateway,
                rejected: None,
                locals: locals.clone(),
                config: config.clone(),
            },
        );
        let msg = FleetMsg::Register {
            session: id.0,
            origin: gateway as u64,
            config: wire::WireConfig::from_config(config),
            locals,
        };
        node.route_send(&self.shared, owner, &msg)
            .inspect_err(|_| {
                self.shared.pending.lock().remove(&id.0);
            })?;
        self.shared.regs_forwarded.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Waits for a session's outcome, wherever it runs (or ran). A
    /// session whose owner died surfaces [`FleetError::NodeDown`] (or
    /// the owner's typed abort, [`SapError::Aborted`], if the wait was
    /// already inside the husk) promptly — never hanging until the
    /// protocol timeout.
    ///
    /// # Errors
    ///
    /// * [`FleetError::Rejected`] — the owner refused the registration.
    /// * [`FleetError::NodeDown`] — the owner (and, for un-acked
    ///   registrations, the origin) died.
    /// * [`FleetError::Timeout`] — `timeout` elapsed.
    /// * [`FleetError::Server`] — the session's own typed error.
    pub fn wait(&self, id: SessionId, timeout: Option<Duration>) -> Result<SapOutcome, FleetError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let expired = |d: &Option<Instant>| d.is_some_and(|d| Instant::now() >= d);
        loop {
            // Un-acked registration: rejected, re-placeable, or doomed?
            let pending_state = {
                let pending = self.shared.pending.lock();
                pending
                    .get(&id.0)
                    .map(|p| (p.owner, p.origin, p.rejected.clone()))
            };
            if let Some((owner, origin, rejected)) = pending_state {
                if let Some(reason) = rejected {
                    self.shared.pending.lock().remove(&id.0);
                    return Err(FleetError::Rejected {
                        session: id,
                        reason,
                    });
                }
                let dead = self.shared.dead.lock();
                if dead.contains(&owner) && dead.contains(&origin) {
                    return Err(FleetError::NodeDown(owner));
                }
                drop(dead);
                if expired(&deadline) {
                    return Err(FleetError::Timeout(id));
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            let Some(owner) = self.shared.placements.lock().get(&id.0).copied() else {
                return Err(FleetError::UnknownSession(id));
            };
            // A killed owner (slot gone without a graceful leave) fails
            // the session fast with the typed fleet error.
            if self.node(owner).is_none() && !self.shared.leaving.lock().contains(&owner) {
                return Err(FleetError::NodeDown(owner));
            }
            let Some(node) = self.node_or_husk(owner) else {
                return Err(FleetError::NodeDown(owner));
            };
            // Wait in slices so ownership handoffs mid-wait are picked
            // up from the fresh placement instead of blocking forever
            // on the old node.
            let slice = match deadline {
                Some(d) => d
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(100)),
                None => Duration::from_millis(100),
            };
            match node.server.wait(id, Some(slice)) {
                Ok(outcome) => return Ok(outcome),
                Err(ServerError::Session(SapError::Timeout {
                    phase: "session harvest",
                    ..
                })) => {
                    if expired(&deadline) {
                        return Err(FleetError::Timeout(id));
                    }
                }
                Err(ServerError::UnknownSession(_))
                | Err(ServerError::Session(SapError::Aborted))
                    if self.shared.leaving.lock().contains(&owner)
                        && self.shared.placements.lock().get(&id.0) == Some(&owner) =>
                {
                    // Handoff in flight: the leaver aborted and exported
                    // the session; the new owner will re-admit it under
                    // the same id. Re-check placements shortly.
                    if expired(&deadline) {
                        return Err(FleetError::Timeout(id));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(FleetError::Server(e)),
            }
        }
    }

    /// `kill -9` semantics: the node vanishes mid-flight. Its running
    /// sessions die (clients get typed errors), its heartbeats stop,
    /// and the *survivors* detect the death through the liveness plane
    /// — membership is repaired there, not here. Un-acked registrations
    /// the dead node owned are re-placed by their origins.
    ///
    /// # Errors
    ///
    /// [`FleetError::NodeDown`] when the node is already gone.
    pub fn kill(&self, j: usize) -> Result<(), FleetError> {
        let node = {
            let mut nodes = self.nodes.lock();
            nodes
                .get_mut(j)
                .and_then(Option::take)
                .ok_or(FleetError::NodeDown(j))?
        };
        // The process is gone: every session it ran dies with it.
        let owned: Vec<u64> = {
            let placements = self.shared.placements.lock();
            placements
                .iter()
                .filter(|&(_, &o)| o == j)
                .map(|(&s, _)| s)
                .collect()
        };
        for s in owned {
            let _ = node.server.abort(SessionId(s));
        }
        // Stopping the mux stops the heartbeat emitter: survivors
        // declare the node dead after one silence budget.
        node.mux.shutdown();
        self.husks.lock().insert(j, node);
        Ok(())
    }

    /// Graceful departure: announce, hand unfinished sessions to their
    /// new owners (same client-facing ids, via the control plane), then
    /// shut the node down. Returns the number of sessions handed off.
    ///
    /// # Errors
    ///
    /// [`FleetError::NodeDown`] when the node is already gone;
    /// [`FleetError::NoNodes`] when it is the last one (nowhere to hand
    /// sessions).
    pub fn leave(&self, j: usize) -> Result<usize, FleetError> {
        if self.alive().len() <= 1 {
            return Err(FleetError::NoNodes);
        }
        let node = {
            let mut nodes = self.nodes.lock();
            nodes
                .get_mut(j)
                .and_then(Option::take)
                .ok_or(FleetError::NodeDown(j))?
        };
        self.shared.leaving.lock().insert(j);
        self.shared.alive.lock().remove(&j);
        let peers: Vec<usize> = self.alive();
        for &p in &peers {
            let _ = node.route_send(&self.shared, p, &FleetMsg::Leave { node: j as u64 });
        }
        // Ownership handoff: every unfinished session with retained
        // inputs re-registers on its new owner under the same id.
        let regs = node.server.export_registrations();
        let mut handed = 0;
        for reg in regs {
            self.shared.placements.lock().remove(&reg.id.0);
            let Some(owner) = self.shared.ring().owner_of(reg.id) else {
                break;
            };
            self.shared.pending.lock().insert(
                reg.id.0,
                Pending {
                    owner,
                    origin: owner,
                    rejected: None,
                    locals: reg.locals.clone(),
                    config: reg.config.clone(),
                },
            );
            let msg = FleetMsg::Register {
                session: reg.id.0,
                origin: owner as u64,
                config: wire::WireConfig::from_config(&reg.config),
                locals: reg.locals,
            };
            if node.route_send(&self.shared, owner, &msg).is_ok() {
                handed += 1;
                self.shared.regs_replaced.fetch_add(1, Ordering::Relaxed);
            }
        }
        node.mux.shutdown();
        self.husks.lock().insert(j, node);
        Ok(handed)
    }

    /// Aggregated fleet counters.
    pub fn metrics(&self) -> FleetMetrics {
        let mut m = FleetMetrics {
            nodes_alive: self.alive().len(),
            node_deaths_detected: self.shared.deaths.load(Ordering::Relaxed),
            registrations_forwarded: self.shared.regs_forwarded.load(Ordering::Relaxed),
            registrations_replaced: self.shared.regs_replaced.load(Ordering::Relaxed),
            ..FleetMetrics::default()
        };
        let nodes: Vec<Arc<FleetNode>> = {
            let live = self.nodes.lock();
            let husks = self.husks.lock();
            live.iter()
                .flatten()
                .cloned()
                .chain(husks.values().cloned())
                .collect()
        };
        for node in nodes {
            let s = node.server.metrics();
            m.sessions_started += s.sessions_started;
            m.sessions_completed += s.sessions_completed;
            m.sessions_failed += s.sessions_failed;
            m.frames_forwarded += node.mux.metrics().frames_forwarded;
        }
        m
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        let nodes: Vec<Arc<FleetNode>> = {
            let live = self.nodes.lock();
            let husks = self.husks.lock();
            live.iter()
                .flatten()
                .cloned()
                .chain(husks.values().cloned())
                .collect()
        };
        for node in &nodes {
            node.mux.shutdown();
        }
        for handle in self.services.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// One node's inbox service: receives sealed control frames, handles
/// registrations/acks/leaves, and turns liveness verdicts into
/// membership repair.
///
/// Reassembly is keyed by **message id**, not sender: control messages
/// are fleet-unique by construction ([`FleetNode::next_msg_id`]), and
/// keying on the sender would be wrong here twice over — two threads of
/// one node (a gateway registering, the service thread acking) may
/// interleave their messages' frames on the same lane, and relayed
/// frames arrive tagged with the *relay* as sender, merging every
/// origin routed through one hop. Per-message frame order is still
/// guaranteed (one thread sends one message's frames back-to-back over
/// FIFO lanes), so a sequence gap means an undeliverable message: its
/// partial state is dropped, and the origin's pending-registration
/// machinery re-sends rather than this layer guessing.
fn service_loop(node: &FleetNode, shared: &Shared) {
    let key = wire::inbox_key(shared.secret, node.index);
    let my_inbox = wire::inbox_session(node.index);
    let mut partial: HashMap<u64, Vec<bytes::Bytes>> = HashMap::new();
    loop {
        match node.inbox.recv_timeout(Duration::from_millis(50)) {
            Ok((_from, sealed)) => {
                let Ok((session, frame)) = open_frame(key, &sealed) else {
                    continue;
                };
                if session != my_inbox {
                    continue;
                }
                let chunks = partial.entry(frame.msg_id).or_default();
                if frame.seq as usize != chunks.len() {
                    partial.remove(&frame.msg_id);
                    continue;
                }
                chunks.push(frame.payload);
                if !frame.last {
                    continue;
                }
                let Some(chunks) = partial.remove(&frame.msg_id) else {
                    continue;
                };
                let bytes = match chunks.as_slice() {
                    [single] => single.clone(),
                    many => {
                        let mut joined = Vec::with_capacity(many.iter().map(|c| c.len()).sum());
                        for c in many {
                            joined.extend_from_slice(c);
                        }
                        bytes::Bytes::from(joined)
                    }
                };
                let Ok(msg) = WireCodec.decode::<FleetMsg>(&bytes) else {
                    continue;
                };
                handle_msg(node, shared, msg);
            }
            Err(TransportError::PeerDown(peer)) => on_peer_down(node, shared, peer),
            Err(TransportError::Timeout) => {}
            Err(_) => return, // mux shut down
        }
    }
}

fn handle_msg(node: &FleetNode, shared: &Shared, msg: FleetMsg) {
    match msg {
        FleetMsg::Register {
            session,
            origin,
            config,
            locals,
        } => {
            let id = SessionId(session);
            let result = node.server.submit_placed(id, locals, &config.to_config());
            let (accepted, reason) = match &result {
                Ok(_) => (true, String::new()),
                // A duplicate means this node already admitted the
                // session (a re-placement raced a slow ack): report
                // success, not failure.
                Err(ServerError::DuplicateSession(_)) => (true, String::new()),
                Err(e) => (false, e.to_string()),
            };
            if accepted {
                shared.placements.lock().insert(session, node.index);
            }
            // The placement maps are shared on one host: settle the
            // origin's pending entry here, at the verdict, so an origin
            // that dies between Register and Ack can never strand an
            // admitted session in pending. The cross-node Ack still
            // travels — a remote origin's control plane learns the
            // verdict the way a multi-host deployment would.
            ack_locally(shared, session, accepted, reason.clone());
            let origin = origin as usize;
            if origin != node.index {
                let ack = FleetMsg::Ack {
                    session,
                    accepted,
                    reason,
                };
                let _ = node.route_send(shared, origin, &ack);
            }
        }
        FleetMsg::Ack {
            session,
            accepted,
            reason,
        } => ack_locally(shared, session, accepted, reason),
        FleetMsg::Leave { node: leaver } => {
            shared.leaving.lock().insert(leaver as usize);
            shared.alive.lock().remove(&(leaver as usize));
        }
    }
}

fn ack_locally(shared: &Shared, session: u64, accepted: bool, reason: String) {
    let mut pending = shared.pending.lock();
    if accepted {
        pending.remove(&session);
    } else if let Some(p) = pending.get_mut(&session) {
        p.rejected = Some(reason);
    }
}

/// Liveness verdict on a peer node: repair membership and re-place the
/// un-acked registrations this node originated toward the dead owner.
fn on_peer_down(node: &FleetNode, shared: &Shared, peer: PartyId) {
    let d = peer.0 as usize;
    let newly = shared.alive.lock().remove(&d);
    let graceful = shared.leaving.lock().contains(&d);
    if newly && !graceful {
        shared.dead.lock().insert(d);
        shared.deaths.fetch_add(1, Ordering::Relaxed);
    }
    if graceful || !shared.dead.lock().contains(&d) {
        return;
    }
    // Re-place registrations we sent to the dead owner and never got
    // acked. They were never admitted anywhere, so re-running them on
    // the new owner cannot double-execute.
    let orphans: Vec<(u64, Vec<Dataset>, SapConfig)> = {
        let pending = shared.pending.lock();
        pending
            .iter()
            .filter(|(_, p)| p.owner == d && p.origin == node.index && p.rejected.is_none())
            .map(|(&s, p)| (s, p.locals.clone(), p.config.clone()))
            .collect()
    };
    for (session, locals, config) in orphans {
        let id = SessionId(session);
        let Some(owner) = shared.ring().owner_of(id) else {
            continue;
        };
        if let Some(p) = shared.pending.lock().get_mut(&session) {
            p.owner = owner;
        }
        if owner == node.index {
            match node.server.submit_placed(id, locals, &config) {
                Ok(_) | Err(ServerError::DuplicateSession(_)) => {
                    shared.placements.lock().insert(session, node.index);
                    shared.pending.lock().remove(&session);
                }
                Err(_) => {}
            }
        } else {
            let msg = FleetMsg::Register {
                session,
                origin: node.index as u64,
                config: wire::WireConfig::from_config(&config),
                locals,
            };
            let _ = node.route_send(shared, owner, &msg);
        }
        shared.regs_replaced.fetch_add(1, Ordering::Relaxed);
    }
    // Registrations whose *origin* died before the owner's verdict
    // settled are adopted by the dead node's ring successor — every
    // survivor computes the same adopter, so exactly one node takes
    // them over. An already-admitted registration was settled out of
    // pending at the verdict, so nothing admitted is ever re-run; a
    // duplicate Register racing a slow original is absorbed by the
    // owner as `DuplicateSession`.
    let ring = shared.ring();
    if ring.owner_of_point(ring::node_point(d)) != Some(node.index) {
        return;
    }
    let adopted: Vec<(u64, Vec<Dataset>, SapConfig)> = {
        let pending = shared.pending.lock();
        pending
            .iter()
            .filter(|(_, p)| p.origin == d && p.rejected.is_none())
            .map(|(&s, p)| (s, p.locals.clone(), p.config.clone()))
            .collect()
    };
    for (session, locals, config) in adopted {
        let id = SessionId(session);
        let Some(owner) = shared.ring().owner_of(id) else {
            continue;
        };
        if let Some(p) = shared.pending.lock().get_mut(&session) {
            p.owner = owner;
            p.origin = node.index;
        }
        if owner == node.index {
            match node.server.submit_placed(id, locals, &config) {
                Ok(_) | Err(ServerError::DuplicateSession(_)) => {
                    shared.placements.lock().insert(session, node.index);
                    shared.pending.lock().remove(&session);
                }
                Err(_) => {}
            }
        } else {
            let msg = FleetMsg::Register {
                session,
                origin: node.index as u64,
                config: wire::WireConfig::from_config(&config),
                locals,
            };
            let _ = node.route_send(shared, owner, &msg);
        }
        shared.regs_replaced.fetch_add(1, Ordering::Relaxed);
    }
}
