//! The fleet control protocol: node inbox sessions, registration
//! messages, and the sealed-frame helpers that carry them.
//!
//! Every fleet node owns one **inbox session** in the reserved
//! [`CONTROL_BASE`] range of the session-id space, opened on its
//! inter-node lane mux. A registration for session `S` is codec-encoded,
//! chunked ([`split_message`]), sealed per frame (wire format v4,
//! unchanged), stamped with the *owner's* inbox session id, and sent to
//! the sender's ring successor. Intermediate nodes have no route for a
//! foreign inbox id, so their mux forwarding hook relays the sealed
//! bytes — zero decode, like the in-session anonymizing relay of
//! `sap-core`'s `link` module — until the owner's mux routes the frame
//! into its inbox.
//!
//! Keys are derived **path-independently** (`derive(secret, dest,
//! dest)`) because the v4 channel key is normally per-direction and a
//! relayed frame changes apparent sender at every hop; the inbox id
//! doubles as both ends of the pair.
//!
//! [`WireConfig`] mirrors [`SapConfig`] with serializable primitives
//! (durations as microseconds). The mirror is exact for every
//! microsecond-granular config, so a session registered through a
//! forwarding node runs under byte-identical settings — the
//! equivalence the fleet tests pin.

use crate::FleetError;
use bytes::Bytes;
use sap_core::placement::{CONTROL_BASE, CONTROL_RANGE};
use sap_core::runtime::QosClass;
use sap_core::session::{DataPlane, SapConfig};
use sap_datasets::Dataset;
use sap_net::crypto::ChannelKey;
use sap_net::frame::{seal_frame, split_message, DEFAULT_CHUNK_SIZE};
use sap_net::sim::FaultConfig;
use sap_net::{Codec, PartyId, SessionId, Transport, WireCodec};
use sap_privacy::{OptimizerConfig, StagedBudget};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Most nodes a fleet can address: one inbox id per node inside the
/// control range, leaving [`SessionId::LIVENESS`] untouched.
pub const MAX_NODES: usize = (CONTROL_RANGE - 2) as usize;

/// The inbox session id of fleet node `node`.
pub fn inbox_session(node: usize) -> SessionId {
    SessionId(CONTROL_BASE + 1 + node as u64)
}

/// The node whose inbox `session` is, if it is an inbox id at all.
pub fn inbox_node(session: SessionId) -> Option<usize> {
    (session.0 > CONTROL_BASE && session.0 < SessionId::LIVENESS.0)
        .then(|| (session.0 - CONTROL_BASE - 1) as usize)
}

/// The path-independent sealing key of a node's inbox.
pub fn inbox_key(fleet_secret: u64, node: usize) -> ChannelKey {
    let id = inbox_session(node).0;
    ChannelKey::derive(fleet_secret, id, id)
}

/// A fault model in wire form (durations as microseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireFault {
    /// Per-send drop probability.
    pub drop_prob: f64,
    /// Per-send duplication probability.
    pub duplicate_prob: f64,
    /// Per-send delay probability.
    pub delay_prob: f64,
    /// Fixed link latency per send, in microseconds.
    pub send_latency_us: u64,
    /// Fault-stream seed.
    pub seed: u64,
}

/// [`SapConfig`] flattened to serializable primitives. The round-trip
/// through [`WireConfig::from_config`] / [`WireConfig::to_config`] is
/// exact (durations at microsecond granularity), so the owning node
/// runs the session under precisely the settings the gateway accepted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireConfig {
    /// Perturbation noise σ.
    pub noise_sigma: f64,
    /// Optimizer: candidate count.
    pub candidates: u64,
    /// Optimizer: candidate noise σ.
    pub opt_noise_sigma: f64,
    /// Optimizer: attacker known-point budget.
    pub known_points: u64,
    /// Optimizer: evaluation subsample size.
    pub eval_sample: u64,
    /// Optimizer: include the ICA attack.
    pub use_ica: bool,
    /// Optimizer: staged schedule enabled.
    pub staged_enabled: bool,
    /// Optimizer: staged survivor fraction.
    pub survivor_fraction: f64,
    /// Optimizer: staged survivor floor.
    pub min_survivors: u64,
    /// Optimizer: worker-thread override.
    pub threads: Option<u64>,
    /// Shared session secret.
    pub session_secret: u64,
    /// Master seed.
    pub seed: u64,
    /// Per-receive timeout, microseconds.
    pub timeout_us: u64,
    /// Session wall-clock budget, microseconds.
    pub session_budget_us: u64,
    /// Rows per stream block.
    pub block_rows: u64,
    /// Streaming data plane (`false` = buffered).
    pub streaming: bool,
    /// Optional fault model.
    pub fault: Option<WireFault>,
    /// Interactive QoS class (`false` = batch).
    pub interactive: bool,
}

impl WireConfig {
    /// Flattens a [`SapConfig`] for the wire.
    pub fn from_config(c: &SapConfig) -> WireConfig {
        WireConfig {
            noise_sigma: c.noise_sigma,
            candidates: c.optimizer.candidates as u64,
            opt_noise_sigma: c.optimizer.noise_sigma,
            known_points: c.optimizer.known_points as u64,
            eval_sample: c.optimizer.eval_sample as u64,
            use_ica: c.optimizer.use_ica,
            staged_enabled: c.optimizer.staged.enabled,
            survivor_fraction: c.optimizer.staged.survivor_fraction,
            min_survivors: c.optimizer.staged.min_survivors as u64,
            threads: c.optimizer.threads.map(|t| t as u64),
            session_secret: c.session_secret,
            seed: c.seed,
            timeout_us: c.timeout.as_micros() as u64,
            session_budget_us: c.session_budget.as_micros() as u64,
            block_rows: c.block_rows as u64,
            streaming: c.data_plane == DataPlane::Streaming,
            fault: c.fault_config.map(|f| WireFault {
                drop_prob: f.drop_prob,
                duplicate_prob: f.duplicate_prob,
                delay_prob: f.delay_prob,
                send_latency_us: f.send_latency.as_micros() as u64,
                seed: f.seed,
            }),
            interactive: c.qos == QosClass::Interactive,
        }
    }

    /// Rebuilds the [`SapConfig`] on the owning node.
    pub fn to_config(&self) -> SapConfig {
        SapConfig {
            noise_sigma: self.noise_sigma,
            optimizer: OptimizerConfig {
                candidates: self.candidates as usize,
                noise_sigma: self.opt_noise_sigma,
                known_points: self.known_points as usize,
                eval_sample: self.eval_sample as usize,
                use_ica: self.use_ica,
                staged: StagedBudget {
                    enabled: self.staged_enabled,
                    survivor_fraction: self.survivor_fraction,
                    min_survivors: self.min_survivors as usize,
                },
                threads: self.threads.map(|t| t as usize),
            },
            session_secret: self.session_secret,
            seed: self.seed,
            timeout: Duration::from_micros(self.timeout_us),
            session_budget: Duration::from_micros(self.session_budget_us),
            block_rows: self.block_rows as usize,
            data_plane: if self.streaming {
                DataPlane::Streaming
            } else {
                DataPlane::Buffered
            },
            fault_config: self.fault.as_ref().map(|f| FaultConfig {
                drop_prob: f.drop_prob,
                duplicate_prob: f.duplicate_prob,
                delay_prob: f.delay_prob,
                send_latency: Duration::from_micros(f.send_latency_us),
                seed: f.seed,
            }),
            qos: if self.interactive {
                QosClass::Interactive
            } else {
                QosClass::Batch
            },
        }
    }
}

/// A fleet control message, carried sealed on node inbox sessions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FleetMsg {
    /// Register (or re-place) a session on its owning node.
    Register {
        /// The client-facing session id, minted on the gateway.
        session: u64,
        /// The gateway node that awaits the [`FleetMsg::Ack`].
        origin: u64,
        /// Protocol settings, flattened for the wire.
        config: WireConfig,
        /// The providers' datasets.
        locals: Vec<Dataset>,
    },
    /// The owner's admission verdict, routed back to the origin.
    Ack {
        /// The session the verdict is for.
        session: u64,
        /// Whether [`sap_server::SapServer::submit_placed`] accepted.
        accepted: bool,
        /// The admission error, rendered, when refused.
        reason: String,
    },
    /// A node announces graceful departure; receivers drop it from
    /// their membership view without marking it dead.
    Leave {
        /// The departing node.
        node: u64,
    },
}

/// Seals `msg` for `dest`'s inbox and sends every frame to `hop` (the
/// sender's ring successor, or `dest` itself on a direct edge).
/// `msg_id` must be unique per sending node — it seeds the per-frame
/// nonces and keys reassembly on the receiver.
pub fn send_via<T: Transport>(
    lane: &T,
    fleet_secret: u64,
    hop: PartyId,
    dest: usize,
    msg_id: u64,
    msg: &FleetMsg,
) -> Result<(), FleetError> {
    let session = inbox_session(dest);
    let key = inbox_key(fleet_secret, dest);
    let encoded = WireCodec
        .encode(msg)
        .map_err(|e| FleetError::Wire(e.to_string()))?;
    for frame in split_message(msg_id, Bytes::from(encoded), DEFAULT_CHUNK_SIZE) {
        // Unique per (sender, message, frame); senders embed their node
        // index in msg_id so two nodes never reuse a nonce on the same
        // inbox key.
        let nonce = msg_id.wrapping_shl(12) | u64::from(frame.seq & 0x0FFF);
        lane.send(hop, seal_frame(key, nonce, session, &frame))
            .map_err(FleetError::Transport)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sap_net::frame::{open_frame, Assembled, Reassembler};
    use sap_net::InMemoryHub;

    #[test]
    fn inbox_ids_live_in_the_control_range() {
        for node in [0usize, 1, 17, MAX_NODES - 1] {
            let id = inbox_session(node);
            assert!(id.0 >= CONTROL_BASE, "{id} below the control range");
            assert_ne!(id, SessionId::LIVENESS);
            assert_eq!(inbox_node(id), Some(node));
        }
        assert_eq!(inbox_node(SessionId::SOLO), None);
        assert_eq!(inbox_node(SessionId::LIVENESS), None);
        assert_eq!(inbox_node(SessionId(CONTROL_BASE)), None);
    }

    #[test]
    fn config_mirror_roundtrips_exactly() {
        let mut cfg = SapConfig::quick_test();
        cfg.qos = QosClass::Batch;
        cfg.fault_config = Some(FaultConfig {
            drop_prob: 0.25,
            send_latency: Duration::from_micros(1500),
            seed: 99,
            ..FaultConfig::default()
        });
        let back = WireConfig::from_config(&cfg).to_config();
        assert_eq!(back.noise_sigma, cfg.noise_sigma);
        assert_eq!(back.optimizer.candidates, cfg.optimizer.candidates);
        assert_eq!(back.optimizer.staged, cfg.optimizer.staged);
        assert_eq!(back.optimizer.threads, cfg.optimizer.threads);
        assert_eq!(back.session_secret, cfg.session_secret);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.timeout, cfg.timeout);
        assert_eq!(back.session_budget, cfg.session_budget);
        assert_eq!(back.block_rows, cfg.block_rows);
        assert_eq!(back.data_plane, cfg.data_plane);
        assert_eq!(back.qos, cfg.qos);
        let (bf, cf) = (back.fault_config.unwrap(), cfg.fault_config.unwrap());
        assert_eq!(bf.drop_prob, cf.drop_prob);
        assert_eq!(bf.send_latency, cf.send_latency);
        assert_eq!(bf.seed, cf.seed);
    }

    #[test]
    fn send_via_seals_frames_the_dest_key_opens() {
        let hub = InMemoryHub::new();
        let sender = hub.try_endpoint(PartyId(0)).unwrap();
        let receiver = hub.try_endpoint(PartyId(1)).unwrap();
        let msg = FleetMsg::Ack {
            session: 41,
            accepted: true,
            reason: String::new(),
        };
        send_via(&sender, 0xF1EE7, PartyId(1), 3, 7, &msg).unwrap();
        let (from, sealed) = receiver.recv().unwrap();
        assert_eq!(from, PartyId(0));
        let (session, frame) = open_frame(inbox_key(0xF1EE7, 3), &sealed).unwrap();
        assert_eq!(session, inbox_session(3));
        let mut asm = Reassembler::new();
        let Ok(Some(Assembled::Message(bytes))) = asm.feed(from, frame) else {
            panic!("single-frame message must assemble");
        };
        let decoded: FleetMsg = WireCodec.decode(&bytes).unwrap();
        assert!(matches!(
            decoded,
            FleetMsg::Ack {
                session: 41,
                accepted: true,
                ..
            }
        ));
        // The wrong inbox key must not open the frame.
        assert!(open_frame(inbox_key(0xF1EE7, 4), &sealed).is_err());
    }
}
