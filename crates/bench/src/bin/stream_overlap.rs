//! Buffered vs streaming data plane: end-to-end SAP session latency
//! under an identical simulated WAN link, captured into
//! `BENCH_stream.json`.
//!
//! Both arms run the *same* sessions over real localhost TCP with the
//! same per-frame link latency ([`FaultConfig::send_latency`]); the only
//! difference is [`SapConfig::data_plane`]:
//!
//! * **buffered** — every role buffers a complete dataset stream before
//!   touching a row: the relay hop stores all `B` blocks, then forwards
//!   all `B` blocks — each data hop costs a full `B × latency` on the
//!   session's critical path.
//! * **streaming** — the relay pump forwards block `i` while block
//!   `i + 1` is still in flight, the provider perturbs block `i + 1`
//!   while block `i` transmits, and the miner decodes blocks as they
//!   land: consecutive hops pipeline, so the exchange costs roughly one
//!   hop plus one block instead of the sum of hops.
//!
//! Both planes produce byte-identical outcomes (asserted here and
//! property-tested in `tests/stream_equivalence.rs`), so the speedup is
//! pure schedule, no semantics.
//!
//! The binary exits non-zero when streaming fails to beat buffered by
//! the scale's required factor — the CI-able regression gate.
//!
//! ```text
//! cargo run -p sap-bench --release --bin stream_overlap -- [--scale quick|full] [out.json]
//! ```

use sap_core::session::{run_session_over, DataPlane, SapConfig, SapOutcome, MINER_ID};
use sap_core::SapError;
use sap_datasets::Dataset;
use sap_linalg::randn_matrix;
use sap_net::sim::{FaultConfig, FaultyTransport};
use sap_net::tcp::local_mesh;
use sap_net::{PartyId, WireCodec};
use std::time::{Duration, Instant};

struct Scale {
    name: &'static str,
    sessions: u64,
    providers: usize,
    records: usize,
    dim: usize,
    block_rows: usize,
    link_latency: Duration,
    /// The gate: minimum streaming/buffered latency ratio to pass.
    required_speedup: f64,
}

const QUICK: Scale = Scale {
    name: "quick",
    sessions: 2,
    providers: 4,
    records: 960,
    dim: 8,
    block_rows: 16,
    link_latency: Duration::from_millis(3),
    required_speedup: 1.1,
};

const FULL: Scale = Scale {
    name: "full",
    sessions: 3,
    providers: 4,
    records: 2_400,
    dim: 8,
    block_rows: 16,
    link_latency: Duration::from_millis(5),
    required_speedup: 1.3,
};

/// The paper's evaluation splits each dataset into *randomly sized*
/// sub-datasets; this bench pins the skew to its realistic extreme — one
/// dominant provider holding most of the rows (the last provider, who
/// doubles as coordinator, stays small). The dominant provider's stream
/// is the session's critical chain: its receiver must store-and-forward
/// every block on the buffered plane, and cut through on the streaming
/// plane.
fn session_locals(scale: &Scale, seed: u64) -> Vec<Dataset> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let m = randn_matrix(scale.dim, scale.records, &mut rng);
    let labels: Vec<usize> = (0..scale.records).map(|i| i % 2).collect();
    let pooled = Dataset::from_column_matrix(&m, labels, 2);

    let k = scale.providers;
    let n = scale.records;
    // Provider 0 holds ~70% of the rows; the rest share the remainder.
    let big = n * 7 / 10;
    let small = (n - big) / (k - 1);
    let mut locals = Vec::with_capacity(k);
    let mut start = 0;
    for pos in 0..k {
        let end = if pos == 0 {
            start + big
        } else if pos == k - 1 {
            n
        } else {
            start + small
        };
        let records: Vec<Vec<f64>> = (start..end).map(|i| pooled.record(i).to_vec()).collect();
        let labels: Vec<usize> = (start..end).map(|i| pooled.label(i)).collect();
        locals.push(Dataset::with_num_classes(records, labels, 2));
        start = end;
    }
    locals
}

fn session_config(scale: &Scale, seed: u64, plane: DataPlane) -> SapConfig {
    SapConfig {
        seed,
        block_rows: scale.block_rows,
        data_plane: plane,
        timeout: Duration::from_secs(300),
        fault_config: Some(FaultConfig {
            send_latency: scale.link_latency,
            ..FaultConfig::default()
        }),
        ..SapConfig::quick_test()
    }
}

/// One end-to-end session over a fresh TCP mesh with the WAN model on
/// every endpoint; returns the outcome and its wall-clock latency.
fn run_session_tcp(
    scale: &Scale,
    seed: u64,
    plane: DataPlane,
) -> Result<(SapOutcome, f64), SapError> {
    let mut ids: Vec<PartyId> = (0..scale.providers as u64).map(PartyId).collect();
    ids.push(MINER_ID);
    let mut mesh = local_mesh(&ids).expect("bind mesh");
    let miner = mesh.pop().expect("miner endpoint");
    let config = session_config(scale, seed, plane);
    let faults = config.fault_config.expect("latency model set");
    let providers: Vec<_> = mesh
        .into_iter()
        .map(|t| FaultyTransport::new(t, faults))
        .collect();
    let miner = FaultyTransport::new(miner, faults);
    let start = Instant::now();
    let outcome = run_session_over(
        session_locals(scale, seed),
        &config,
        providers,
        miner,
        WireCodec,
    )?;
    Ok((outcome, start.elapsed().as_secs_f64()))
}

struct Arm {
    total_s: f64,
    session_s: Vec<f64>,
    outcomes: Vec<SapOutcome>,
}

fn run_arm(scale: &Scale, seeds: &[u64], plane: DataPlane) -> Arm {
    let mut session_s = Vec::new();
    let mut outcomes = Vec::new();
    let start = Instant::now();
    for &seed in seeds {
        let (outcome, secs) = run_session_tcp(scale, seed, plane).expect("bench session");
        session_s.push(secs);
        outcomes.push(outcome);
    }
    Arm {
        total_s: start.elapsed().as_secs_f64(),
        session_s,
        outcomes,
    }
}

/// The exchange plan is drawn from the session seed, and a uniform
/// permutation may hand a provider its *own* dataset back. A self-receive
/// of the dominant stream puts send-then-forward on one thread, which no
/// schedule can pipeline — the session is latency-invariant by
/// construction and measures plan luck, not the data plane. The bench
/// pins the topology it is about: seeds whose dominant stream crosses
/// parties. Each candidate is probed with a cheap in-memory zero-latency
/// run, reading the audit ledger's `perturbed-data` edge for provider 0.
fn pick_cross_party_seeds(scale: &Scale) -> Vec<u64> {
    let probe_cfg = SapConfig {
        block_rows: scale.block_rows,
        data_plane: DataPlane::Streaming,
        timeout: Duration::from_secs(60),
        ..SapConfig::quick_test()
    };
    let mut seeds = Vec::new();
    let mut candidate = 0x57E4u64;
    while (seeds.len() as u64) < scale.sessions {
        let cfg = SapConfig {
            seed: candidate,
            ..probe_cfg.clone()
        };
        let outcome =
            sap_core::run_session(session_locals(scale, candidate), &cfg).expect("probe session");
        let dominant_crosses = outcome
            .audit
            .events()
            .iter()
            .any(|e| e.kind == "perturbed-data" && e.from == PartyId(0) && e.to != PartyId(0));
        if dominant_crosses {
            seeds.push(candidate);
        } else {
            println!("  (seed {candidate:#x} drew a self-receive plan for the dominant provider — skipped)");
        }
        candidate += 1;
    }
    seeds
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn main() {
    let mut out_path = String::from("BENCH_stream.json");
    let mut scale = QUICK;
    // Tuning knobs for exploring the latency/compute trade-off; applied
    // after the scale preset so flag order never matters.
    let mut latency_ms: Option<u64> = None;
    let mut block_rows: Option<usize> = None;
    let mut records: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => QUICK,
                    "full" => FULL,
                    other => {
                        eprintln!("unknown scale '{other}' (quick|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--latency-ms" => {
                latency_ms = Some(args.next().unwrap_or_default().parse().expect("latency ms"));
            }
            "--block-rows" => {
                block_rows = Some(args.next().unwrap_or_default().parse().expect("block rows"));
            }
            "--records" => {
                records = Some(args.next().unwrap_or_default().parse().expect("records"));
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}' (--scale | --latency-ms | --block-rows | --records | <out.json>)");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }
    if let Some(ms) = latency_ms {
        scale.link_latency = Duration::from_millis(ms);
    }
    if let Some(rows) = block_rows {
        scale.block_rows = rows;
    }
    if let Some(n) = records {
        scale.records = n;
    }
    let scale = &scale;

    let blocks_dominant = (scale.records * 7 / 10).div_ceil(scale.block_rows);
    println!(
        "stream_overlap [{}]: {} sessions × ({} providers, {} rows × {} dims, 70% on one provider), {} rows/block (~{} blocks on the dominant chain), link latency {:?}",
        scale.name,
        scale.sessions,
        scale.providers,
        scale.records,
        scale.dim,
        scale.block_rows,
        blocks_dominant,
        scale.link_latency,
    );

    let seeds = pick_cross_party_seeds(scale);
    let buffered = run_arm(scale, &seeds, DataPlane::Buffered);
    println!(
        "  buffered:  {:.3}s total, {:.3}s/session",
        buffered.total_s,
        mean(&buffered.session_s)
    );
    let streaming = run_arm(scale, &seeds, DataPlane::Streaming);
    println!(
        "  streaming: {:.3}s total, {:.3}s/session",
        streaming.total_s,
        mean(&streaming.session_s)
    );

    // Semantics check: the two planes must agree byte-for-byte.
    for (s, b) in streaming.outcomes.iter().zip(&buffered.outcomes) {
        assert_eq!(s.unified, b.unified, "data planes diverged");
        assert_eq!(s.relayed_blocks, b.relayed_blocks);
    }
    let pipelined: u64 = streaming
        .outcomes
        .iter()
        .map(|o| o.stream.pipelined_blocks)
        .sum();
    let overlap = mean(
        &streaming
            .outcomes
            .iter()
            .map(|o| o.stream.overlap_ratio())
            .collect::<Vec<_>>(),
    );
    let speedup = mean(&buffered.session_s) / mean(&streaming.session_s);
    println!(
        "  end-to-end session speedup: {speedup:.2}x  ({pipelined} blocks pipelined, {:.0}% decode overlap)",
        overlap * 100.0
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"stream_overlap\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"sessions\": {},\n",
            "  \"providers_per_session\": {},\n",
            "  \"records_per_session\": {},\n",
            "  \"dims\": {},\n",
            "  \"block_rows\": {},\n",
            "  \"partition\": \"70% of rows on one dominant provider (paper's randomly-sized splits, pinned to the skewed case)\",\n",
            "  \"blocks_dominant_chain\": {},\n",
            "  \"link_latency_ms\": {},\n",
            "  \"buffered\": {{\n",
            "    \"model\": \"every role buffers a complete stream before compute; relay is store-and-forward\",\n",
            "    \"total_s\": {:.6},\n",
            "    \"mean_session_s\": {:.6}\n",
            "  }},\n",
            "  \"streaming\": {{\n",
            "    \"model\": \"relay pump forwards blocks in flight; perturb/decode/adapt overlap transport I/O\",\n",
            "    \"total_s\": {:.6},\n",
            "    \"mean_session_s\": {:.6},\n",
            "    \"pipelined_blocks\": {},\n",
            "    \"mean_overlap_ratio\": {:.4}\n",
            "  }},\n",
            "  \"end_to_end_session_speedup\": {:.3},\n",
            "  \"outcomes_byte_identical\": true,\n",
            "  \"note\": \"identical sessions, TCP mesh, and per-frame link latency in both arms; sessions pin exchange plans whose dominant stream crosses parties (a self-receive plan puts send-then-forward on one thread and is latency-invariant on any data plane); the speedup is the exchange's store-and-forward hops collapsing into a pipeline — pure schedule, no semantic change (see tests/stream_equivalence.rs)\"\n",
            "}}\n"
        ),
        scale.name,
        scale.sessions,
        scale.providers,
        scale.records,
        scale.dim,
        scale.block_rows,
        blocks_dominant,
        scale.link_latency.as_millis(),
        buffered.total_s,
        mean(&buffered.session_s),
        streaming.total_s,
        mean(&streaming.session_s),
        pipelined,
        overlap,
        speedup,
    );
    std::fs::write(&out_path, json).expect("write BENCH_stream.json");
    println!("  wrote {out_path}");

    if speedup < scale.required_speedup {
        eprintln!(
            "FAIL: streaming end-to-end latency only {speedup:.2}x the buffered path (need {:.2}x)",
            scale.required_speedup
        );
        std::process::exit(1);
    }
}
