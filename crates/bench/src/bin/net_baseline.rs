//! Captures a transport-pipeline baseline into `BENCH_net.json`.
//!
//! Measures the large-dataset exchange path end to end (encode → seal →
//! transport → open → decode) twice:
//!
//! * **monolithic** — the seed pipeline: whole `SapMessage` serde-encoded,
//!   sealed byte-at-a-time, shipped as one payload;
//! * **chunked** — the streaming pipeline: row-block frames, word-wise
//!   sealed envelope, no monolithic allocation.
//!
//! The speedup measures the pipelines as shipped, so it combines two
//! deliberate changes — chunking *and* the 8-byte-word envelope (the
//! legacy envelope seals byte-at-a-time). The JSON names both pipelines
//! so the number is not misread as chunking alone.
//!
//! ```text
//! cargo run -p sap-bench --release --bin net_baseline [-- out.json]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_core::link::{self, Inbound};
use sap_core::messages::{SapMessage, SlotTag};
use sap_datasets::Dataset;
use sap_linalg::randn_matrix;
use sap_net::crypto::{open, seal, ChannelKey};
use sap_net::node::Node;
use sap_net::transport::InMemoryHub;
use sap_net::{wire, PartyId, Transport};
use std::hint::black_box;
use std::time::{Duration, Instant};

const RECORDS: usize = 20_000;
const DIM: usize = 16;
const BLOCK_ROWS: usize = 512;

fn dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    let m = randn_matrix(DIM, RECORDS, &mut rng);
    let labels = (0..RECORDS).map(|i| i % 2).collect();
    Dataset::from_column_matrix(&m, labels, 2)
}

/// Times `f` over enough repetitions for a stable median, returns seconds
/// per iteration.
fn time_it(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut samples = Vec::new();
    for _ in 0..7 {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_net.json".into());
    let data = dataset();
    let msg = SapMessage::PerturbedData {
        slot: SlotTag(7),
        data: data.clone(),
    };
    let payload_bytes = wire::to_bytes(&msg).expect("encode").len();
    let key = ChannelKey::derive(42, 1, 2);

    // Monolithic (seed) pipeline.
    let hub = InMemoryHub::new();
    let tx = hub.endpoint(PartyId(1));
    let rx = hub.endpoint(PartyId(2));
    let monolithic_s = time_it(|| {
        let plain = wire::to_bytes(&msg).unwrap();
        let sealed = seal(key, 9, &plain);
        tx.send(PartyId(2), sealed).unwrap();
        let (_, got) = rx.recv().unwrap();
        let opened = open(key, &got).unwrap();
        black_box(wire::from_bytes::<SapMessage>(&opened).unwrap());
    });

    // Chunked streaming pipeline.
    let hub = InMemoryHub::new();
    let ntx = Node::new(hub.endpoint(PartyId(1)), 42);
    let nrx = Node::new(hub.endpoint(PartyId(2)), 42);
    let chunked_s = time_it(|| {
        link::send_dataset(&ntx, PartyId(2), false, SlotTag(7), &data, BLOCK_ROWS).unwrap();
        let (_, inbound) = link::recv_message(&nrx, Duration::from_secs(10)).unwrap();
        let Inbound::Data(stream) = inbound else {
            panic!("expected stream");
        };
        black_box(stream.into_dataset().unwrap());
    });

    let mib = payload_bytes as f64 / (1024.0 * 1024.0);
    let monolithic_mibps = mib / monolithic_s;
    let chunked_mibps = mib / chunked_s;
    let speedup = chunked_mibps / monolithic_mibps;

    let json = format!(
        "{{\n  \"workload\": \"dataset exchange {RECORDS} records x {DIM} dims\",\n  \
         \"monolithic_pipeline\": \"whole-message wire encode + byte-wise legacy seal\",\n  \
         \"chunked_pipeline\": \"row-block stream frames + word-wise sealed envelope v2\",\n  \
         \"payload_bytes\": {payload_bytes},\n  \
         \"block_rows\": {BLOCK_ROWS},\n  \
         \"monolithic_mibps\": {monolithic_mibps:.1},\n  \
         \"chunked_mibps\": {chunked_mibps:.1},\n  \
         \"speedup\": {speedup:.2}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    println!("wrote {out_path}");
    assert!(
        speedup >= 1.5,
        "chunked pipeline regressed below the 1.5x acceptance bar: {speedup:.2}x"
    );
}
