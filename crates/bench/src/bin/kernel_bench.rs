//! Per-kernel microbench suite: packed register-blocked matmul,
//! bounded-heap top-`k` selection, and the fused perturbation pass —
//! each against its pinned bit-identical reference, captured into
//! `BENCH_kernels.json`.
//!
//! Three arms, three references (all property-tested equal in
//! `tests/kernel_equivalence.rs`, so every speedup here is pure
//! schedule/locality, no semantics):
//!
//! * **matmul** — [`sap_linalg::kernel::pack_b`] +
//!   [`sap_linalg::kernel::matmul_packed_rows`] (the `MR × NR`
//!   register-blocked microkernel, packing cost included) vs
//!   [`sap_linalg::kernel::matmul_rows`] (the cache-blocked i-k-j
//!   reference), at shapes spanning the session rotation (`d×d · d×N`,
//!   small `d`, wide right factor — the reference's long contiguous
//!   inner loops are at FP peak and keep it), the optimizer
//!   candidate-suite, and the record-block regime (`N×d · d×d'`, tall
//!   and narrow — where the packed kernel wins and `Matrix::matmul`
//!   routes to it). Reported in GFLOP/s (`2·m·k·n / t`); the gate
//!   applies to the last shape, in the packed-routing regime.
//! * **topk** — [`sap_classify::topk::select_k_smallest`] (bounded
//!   max-heap, `O(n·log k)`) vs
//!   [`sap_classify::topk::select_k_smallest_reference`] (stable full
//!   sort + truncate, `O(n·log n)`). Reported in Melem/s.
//! * **perturb** — `GeometricPerturbation::perturb_records_into` (fused
//!   rotate+shift+noise, one pass) vs `perturb_records_staged_into`
//!   (affine pass then noise pass). Reported in Melem/s of output.
//!
//! Timing is criterion-style best-of-rounds: each arm runs `rounds`
//! rounds of `reps` back-to-back iterations and keeps the **minimum**
//! per-iteration time — the least-noise estimate of the kernel's true
//! cost on this machine.
//!
//! The binary exits non-zero when any kernel misses its gate floor —
//! the CI-able regression gate (`--scale quick` in ci.yml).
//!
//! ```text
//! cargo run -p sap-bench --release --bin kernel_bench -- [--scale quick|full] [out.json]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_bench::stats;
use sap_classify::topk::{select_k_smallest, select_k_smallest_reference};
use sap_linalg::{kernel, randn_matrix};
use sap_perturb::GeometricPerturbation;
use std::hint::black_box;

struct Scale {
    name: &'static str,
    rounds: usize,
    /// Matmul shapes `(m, k, n)`; the **last** is the headline/gated one.
    matmul_shapes: &'static [(usize, usize, usize)],
    matmul_reps: usize,
    topk_n: usize,
    topk_k: usize,
    topk_reps: usize,
    perturb_dim: usize,
    perturb_records: usize,
    perturb_reps: usize,
    /// Gate floors (fast/reference time ratio), per ISSUE 9.
    matmul_floor: f64,
    topk_floor: f64,
    perturb_floor: f64,
}

const QUICK: Scale = Scale {
    name: "quick",
    rounds: 7,
    matmul_shapes: &[(8, 8, 2048), (64, 32, 4096), (1024, 32, 8), (4096, 16, 8)],
    matmul_reps: 8,
    topk_n: 10_000,
    topk_k: 8,
    topk_reps: 16,
    perturb_dim: 8,
    perturb_records: 25_000,
    perturb_reps: 8,
    matmul_floor: 1.2,
    topk_floor: 1.5,
    perturb_floor: 1.1,
};

const FULL: Scale = Scale {
    name: "full",
    rounds: 9,
    matmul_shapes: &[
        (8, 8, 16_384),
        (64, 32, 16_384),
        (4096, 32, 16),
        (16_384, 16, 8),
    ],
    matmul_reps: 6,
    topk_n: 200_000,
    topk_k: 8,
    topk_reps: 8,
    perturb_dim: 8,
    perturb_records: 250_000,
    perturb_reps: 4,
    matmul_floor: 1.2,
    topk_floor: 1.5,
    perturb_floor: 1.1,
};

/// Best-of-rounds: minimum per-iteration seconds over `rounds` rounds of
/// `reps` back-to-back calls.
fn best_of(rounds: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let ((), secs) = stats::time(|| {
            for _ in 0..reps {
                f();
            }
        });
        best = best.min(secs / reps as f64);
    }
    best
}

struct MatmulRow {
    m: usize,
    k: usize,
    n: usize,
    ref_gflops: f64,
    packed_gflops: f64,
    speedup: f64,
    /// Which path `Matrix::matmul` routes this shape to
    /// ([`kernel::packing_pays`]): the dispatcher always runs the faster
    /// of the two bit-identical kernels.
    routed_packed: bool,
}

fn bench_matmul(scale: &Scale, rng: &mut StdRng) -> Vec<MatmulRow> {
    let mut rows = Vec::new();
    for &(m, k, n) in scale.matmul_shapes {
        let a = randn_matrix(m, k, rng);
        let b = randn_matrix(k, n, rng);

        // One-time semantics check: the two paths must agree bit-for-bit.
        let mut want = vec![0.0; m * n];
        kernel::matmul_rows(&a, &b, 0, &mut want);
        let packed = kernel::pack_b(&b);
        let mut got = vec![0.0; m * n];
        kernel::matmul_packed_rows(&a, &packed, 0, &mut got);
        assert!(
            want.iter()
                .zip(&got)
                .all(|(w, g)| w.to_bits() == g.to_bits()),
            "packed matmul diverged from matmul_rows at {m}x{k}x{n}"
        );

        let t_ref = best_of(scale.rounds, scale.matmul_reps, || {
            let mut out = vec![0.0; m * n];
            kernel::matmul_rows(black_box(&a), black_box(&b), 0, &mut out);
            black_box(&out);
        });
        let t_packed = best_of(scale.rounds, scale.matmul_reps, || {
            let packed = kernel::pack_b(black_box(&b));
            let mut out = vec![0.0; m * n];
            kernel::matmul_packed_rows(black_box(&a), &packed, 0, &mut out);
            black_box(&out);
        });

        let flops = (2 * m * k * n) as f64;
        rows.push(MatmulRow {
            m,
            k,
            n,
            ref_gflops: flops / t_ref / 1e9,
            packed_gflops: flops / t_packed / 1e9,
            speedup: t_ref / t_packed,
            routed_packed: kernel::packing_pays(m, k, n),
        });
    }
    rows
}

struct ElemRow {
    ref_melems: f64,
    fast_melems: f64,
    speedup: f64,
}

fn bench_topk(scale: &Scale, rng: &mut StdRng) -> ElemRow {
    let values: Vec<f64> = randn_matrix(1, scale.topk_n, rng).as_slice().to_vec();
    let k = scale.topk_k;

    assert_eq!(
        select_k_smallest(values.iter().copied(), k),
        select_k_smallest_reference(values.iter().copied(), k),
        "top-k selection diverged from the stable-sort reference"
    );

    let t_ref = best_of(scale.rounds, scale.topk_reps, || {
        black_box(select_k_smallest_reference(
            black_box(&values).iter().copied(),
            k,
        ));
    });
    let t_fast = best_of(scale.rounds, scale.topk_reps, || {
        black_box(select_k_smallest(black_box(&values).iter().copied(), k));
    });

    let n = scale.topk_n as f64;
    ElemRow {
        ref_melems: n / t_ref / 1e6,
        fast_melems: n / t_fast / 1e6,
        speedup: t_ref / t_fast,
    }
}

fn bench_perturb(scale: &Scale, rng: &mut StdRng) -> ElemRow {
    let d = scale.perturb_dim;
    let n = scale.perturb_records;
    let g = GeometricPerturbation::random(d, 0.1, rng);
    let x = randn_matrix(d, n, rng);
    let delta = randn_matrix(d, n, rng).scale(0.1);

    let mut fused = Vec::new();
    let mut staged = Vec::new();
    g.perturb_records_into(&x, &delta, 0..n, &mut fused);
    g.perturb_records_staged_into(&x, &delta, 0..n, &mut staged);
    assert!(
        fused
            .iter()
            .zip(&staged)
            .all(|(f, s)| f.to_bits() == s.to_bits()),
        "fused perturbation diverged from the staged reference"
    );

    let mut out = Vec::new();
    let t_ref = best_of(scale.rounds, scale.perturb_reps, || {
        g.perturb_records_staged_into(black_box(&x), black_box(&delta), 0..n, &mut out);
        black_box(&out);
    });
    let t_fast = best_of(scale.rounds, scale.perturb_reps, || {
        g.perturb_records_into(black_box(&x), black_box(&delta), 0..n, &mut out);
        black_box(&out);
    });

    let elems = (d * n) as f64;
    ElemRow {
        ref_melems: elems / t_ref / 1e6,
        fast_melems: elems / t_fast / 1e6,
        speedup: t_ref / t_fast,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_kernels.json");
    let mut scale = &QUICK;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => {
                        eprintln!("unknown scale '{other}' (quick|full)");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}' (--scale | <out.json>)");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }

    println!(
        "kernel_bench [{}]: {} rounds, best-of-rounds per-iteration minimum",
        scale.name, scale.rounds
    );
    let mut rng = StdRng::seed_from_u64(0x6B65_726E);

    let matmul = bench_matmul(scale, &mut rng);
    for r in &matmul {
        println!(
            "  matmul {:>5}x{:>2}x{:<5} reference {:>7.3} GFLOP/s   packed {:>7.3} GFLOP/s   {:.2}x  (routed: {})",
            r.m,
            r.k,
            r.n,
            r.ref_gflops,
            r.packed_gflops,
            r.speedup,
            if r.routed_packed { "packed" } else { "reference" }
        );
    }
    let headline = matmul.last().expect("at least one matmul shape");
    assert!(
        headline.routed_packed,
        "the gated headline shape must route to the packed kernel"
    );

    let topk = bench_topk(scale, &mut rng);
    println!(
        "  topk   n={} k={}   full-sort {:>8.2} Melem/s   heap {:>8.2} Melem/s   {:.2}x",
        scale.topk_n, scale.topk_k, topk.ref_melems, topk.fast_melems, topk.speedup
    );

    let perturb = bench_perturb(scale, &mut rng);
    println!(
        "  perturb d={} n={}   staged {:>8.2} Melem/s   fused {:>8.2} Melem/s   {:.2}x",
        scale.perturb_dim,
        scale.perturb_records,
        perturb.ref_melems,
        perturb.fast_melems,
        perturb.speedup
    );

    let shapes_json: String = matmul
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{ \"m\": {}, \"k\": {}, \"n\": {}, ",
                    "\"reference_gflops\": {:.3}, \"packed_gflops\": {:.3}, ",
                    "\"speedup\": {:.3}, \"matmul_routes_to\": \"{}\" }}"
                ),
                r.m,
                r.k,
                r.n,
                r.ref_gflops,
                r.packed_gflops,
                r.speedup,
                if r.routed_packed {
                    "packed"
                } else {
                    "reference"
                }
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernels\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"timing\": \"best-of-{} rounds, per-iteration minimum\",\n",
            "  \"matmul\": {{\n",
            "    \"reference\": \"kernel::matmul_rows (cache-blocked i-k-j)\",\n",
            "    \"fast\": \"kernel::pack_b + matmul_packed_rows (4x4 register-blocked, packing cost included)\",\n",
            "    \"shapes\": [\n{}\n    ],\n",
            "    \"headline_speedup\": {:.3}\n",
            "  }},\n",
            "  \"topk\": {{\n",
            "    \"reference\": \"stable full sort + truncate (O(n log n))\",\n",
            "    \"fast\": \"bounded max-heap (O(n log k))\",\n",
            "    \"n\": {},\n",
            "    \"k\": {},\n",
            "    \"reference_melems_per_s\": {:.2},\n",
            "    \"fast_melems_per_s\": {:.2},\n",
            "    \"speedup\": {:.3}\n",
            "  }},\n",
            "  \"perturb\": {{\n",
            "    \"reference\": \"staged two-pass (affine then noise)\",\n",
            "    \"fast\": \"fused rotate+shift+noise, one pass\",\n",
            "    \"dim\": {},\n",
            "    \"records\": {},\n",
            "    \"reference_melems_per_s\": {:.2},\n",
            "    \"fast_melems_per_s\": {:.2},\n",
            "    \"speedup\": {:.3}\n",
            "  }},\n",
            "  \"gates\": {{\n",
            "    \"matmul_floor\": {:.2}, \"matmul_pass\": {},\n",
            "    \"topk_floor\": {:.2}, \"topk_pass\": {},\n",
            "    \"perturb_floor\": {:.2}, \"perturb_pass\": {}\n",
            "  }},\n",
            "  \"note\": \"every fast path is property-tested bit-identical to its reference (tests/kernel_equivalence.rs); Matrix::matmul routes each shape to whichever kernel is faster (packing_pays), and the gate applies to the last shape — the record-block regime the packed kernel is for\"\n",
            "}}\n"
        ),
        scale.name,
        scale.rounds,
        shapes_json,
        headline.speedup,
        scale.topk_n,
        scale.topk_k,
        topk.ref_melems,
        topk.fast_melems,
        topk.speedup,
        scale.perturb_dim,
        scale.perturb_records,
        perturb.ref_melems,
        perturb.fast_melems,
        perturb.speedup,
        scale.matmul_floor,
        headline.speedup >= scale.matmul_floor,
        scale.topk_floor,
        topk.speedup >= scale.topk_floor,
        scale.perturb_floor,
        perturb.speedup >= scale.perturb_floor,
    );
    std::fs::write(&out_path, json).expect("write BENCH_kernels.json");
    println!("  wrote {out_path}");

    let mut failed = false;
    if headline.speedup < scale.matmul_floor {
        eprintln!(
            "FAIL: packed matmul only {:.2}x matmul_rows at {}x{}x{} (need {:.2}x)",
            headline.speedup, headline.m, headline.k, headline.n, scale.matmul_floor
        );
        failed = true;
    }
    if topk.speedup < scale.topk_floor {
        eprintln!(
            "FAIL: heap top-k only {:.2}x the full sort at n={} k={} (need {:.2}x)",
            topk.speedup, scale.topk_n, scale.topk_k, scale.topk_floor
        );
        failed = true;
    }
    if perturb.speedup < scale.perturb_floor {
        eprintln!(
            "FAIL: fused perturbation only {:.2}x the staged path (need {:.2}x)",
            perturb.speedup, scale.perturb_floor
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
