//! Serial loop vs staged parallel optimizer engine, captured into
//! `BENCH_optimize.json`.
//!
//! Four arms over the same dataset and the same candidate field:
//!
//! * **serial (no ICA)** — the plain serial reference loop, full suite
//!   per candidate, one thread.
//! * **parallel (no ICA)** — the engine with pruning disabled; must
//!   select the **bit-identical** winner (the equivalence gate).
//! * **legacy serial + ICA** — yesterday's shape: one serial loop, the
//!   standard suite with the self-whitening ICA attack per candidate.
//!   This is the cost that kept `use_ica: false` the default.
//! * **staged engine + ICA** — today's default: cheap attacks score the
//!   whole field in parallel, successive halving prunes, and only the
//!   survivors pay for PCA/ICA, with every candidate's ICA whitener
//!   minted from one shared covariance decomposition.
//!
//! The binary exits non-zero when the staged ICA-enabled engine fails to
//! beat the legacy serial ICA-enabled loop by the scale's required
//! factor, or when the no-ICA engine diverges from the serial reference
//! — the CI-able regression gate. The headline speedup is algorithmic
//! (pruning + whitening reuse) on top of thread parallelism, so it holds
//! on single-core hosts too.
//!
//! ```text
//! cargo run -p sap-bench --release --bin optimize_scaling -- [--scale quick|full] [out.json]
//! ```

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt, SeedableRng};
use sap_linalg::Matrix;
use sap_perturb::GeometricPerturbation;
use sap_privacy::engine::{run, serial_reference, EngineOutcome};
use sap_privacy::optimize::{OptimizerConfig, StagedBudget};
use sap_privacy::{AttackSuite, AttackerKnowledge};
use std::time::Instant;

struct Scale {
    name: &'static str,
    candidates: usize,
    records: usize,
    dim: usize,
    eval_sample: usize,
    threads: usize,
    /// The gate: minimum staged-engine/legacy-serial speedup (ICA on).
    required_speedup: f64,
}

const QUICK: Scale = Scale {
    name: "quick",
    candidates: 16,
    records: 2_000,
    dim: 8,
    eval_sample: 160,
    threads: 4,
    required_speedup: 1.2,
};

const FULL: Scale = Scale {
    name: "full",
    candidates: 32,
    records: 4_000,
    dim: 10,
    eval_sample: 256,
    threads: 4,
    required_speedup: 2.0,
};

/// Skewed, non-Gaussian, anisotropic data: every attack in the suite
/// applies, and ICA has real structure to attack (the paper's evaluation
/// regime for the optimizer figures).
fn dataset(scale: &Scale, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(scale.dim, scale.records, |r, _| {
        let u: f64 = rng.random_range(0.0001..1.0);
        match r % 3 {
            0 => (-u.ln()) * (0.2 + 0.1 * r as f64),
            1 => u * u + 0.05 * r as f64,
            _ => u * (1.0 + 0.2 * r as f64),
        }
    })
}

fn config(scale: &Scale, use_ica: bool, staged: bool, threads: usize) -> OptimizerConfig {
    OptimizerConfig {
        candidates: scale.candidates,
        noise_sigma: 0.05,
        known_points: 6,
        eval_sample: scale.eval_sample,
        use_ica,
        staged: StagedBudget {
            enabled: staged,
            ..StagedBudget::default()
        },
        threads: Some(threads),
    }
}

/// Yesterday's optimizer, reproduced byte-for-byte in shape: one RNG
/// stream, the standard suite (self-whitening ICA included) on **every**
/// candidate, serially. This is the baseline the engine replaces.
fn legacy_serial_ica(x: &Matrix, cfg: &OptimizerConfig, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = subsample(x, cfg.eval_sample, &mut rng);
    let knowledge = AttackerKnowledge::worst_case(&sample, cfg.known_points);
    let suite = AttackSuite::standard();
    let mut best = f64::NEG_INFINITY;
    for _ in 0..cfg.candidates {
        let cand = GeometricPerturbation::random(x.rows(), cfg.noise_sigma, &mut rng);
        let (y, _) = cand.perturb(&sample, &mut rng);
        best = best.max(suite.privacy_guarantee(&sample, &y, &knowledge));
    }
    best
}

fn subsample<R: Rng>(x: &Matrix, limit: usize, rng: &mut R) -> Matrix {
    if x.cols() <= limit {
        return x.clone();
    }
    let mut idx: Vec<usize> = (0..x.cols()).collect();
    idx.shuffle(rng);
    idx.truncate(limit);
    let cols: Vec<Vec<f64>> = idx.iter().map(|&c| x.column(c)).collect();
    Matrix::from_columns(&cols)
}

/// Runs `f` `reps` times, returning the last result and the fastest
/// wall time (minimum damps scheduler noise on shared CI hosts).
fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (out.expect("reps >= 1"), best)
}

fn main() {
    let mut out_path = String::from("BENCH_optimize.json");
    let mut scale = &QUICK;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => {
                        eprintln!("unknown scale '{other}' (quick|full)");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}' (--scale quick|full | <out.json>)");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let seed = 0x0B71_717Eu64;
    let x = dataset(scale, seed);
    let reps = if scale.name == "full" { 2 } else { 1 };
    println!(
        "optimize_scaling [{}]: {} candidates on {} x {} records (eval sample {}), {} engine threads, {} host cores",
        scale.name, scale.candidates, scale.dim, scale.records, scale.eval_sample, scale.threads, host_cores,
    );

    // Arm 1/2: no ICA, pruning off — the equivalence pair.
    let fast_serial_cfg = config(scale, false, false, 1);
    let fast_parallel_cfg = config(scale, false, false, scale.threads);
    let (serial_fast, serial_fast_s): (EngineOutcome, f64) = timed(reps, || {
        serial_reference(&x, &fast_serial_cfg, &mut StdRng::seed_from_u64(seed)).expect("serial")
    });
    let (parallel_fast, parallel_fast_s) = timed(reps, || {
        run(&x, &fast_parallel_cfg, &mut StdRng::seed_from_u64(seed)).expect("parallel")
    });
    let diverged = parallel_fast.result.privacy_guarantee.to_bits()
        != serial_fast.result.privacy_guarantee.to_bits()
        || parallel_fast.result.perturbation != serial_fast.result.perturbation
        || parallel_fast.result.history != serial_fast.result.history;
    let speedup_parallel = serial_fast_s / parallel_fast_s;
    println!(
        "  serial   (no ICA, 1 thread):        {serial_fast_s:.3}s  rho={:.4}",
        serial_fast.result.privacy_guarantee
    );
    println!(
        "  parallel (no ICA, {} threads):       {parallel_fast_s:.3}s  {speedup_parallel:.2}x, outcome {}",
        scale.threads,
        if diverged { "DIVERGED" } else { "bit-identical" }
    );

    // Arm 3: the legacy serial ICA-enabled loop (self-whitening ICA on
    // every candidate).
    let ica_cfg = config(scale, true, true, scale.threads);
    let (legacy_rho, legacy_s) = timed(reps, || legacy_serial_ica(&x, &ica_cfg, seed));
    println!(
        "  legacy serial + ICA (full suite every candidate): {legacy_s:.3}s  rho={legacy_rho:.4}"
    );

    // Arm 4: the staged engine with ICA — today's default.
    let (engine_ica, engine_ica_s) = timed(reps, || {
        run(&x, &ica_cfg, &mut StdRng::seed_from_u64(seed)).expect("staged engine")
    });
    let speedup_ica = legacy_s / engine_ica_s;
    println!(
        "  staged engine + ICA ({} survivors of {}, {} ICA applications): {engine_ica_s:.3}s  {speedup_ica:.2}x vs legacy",
        engine_ica.stats.survivors, engine_ica.stats.candidates, engine_ica.stats.ica_applied,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"optimize_scaling\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"candidates\": {},\n",
            "  \"records\": {},\n",
            "  \"dims\": {},\n",
            "  \"eval_sample\": {},\n",
            "  \"engine_threads\": {},\n",
            "  \"host_cores\": {},\n",
            "  \"serial_no_ica\": {{\n",
            "    \"model\": \"serial reference loop, full suite per candidate, 1 thread\",\n",
            "    \"total_s\": {:.6},\n",
            "    \"guarantee\": {:.6}\n",
            "  }},\n",
            "  \"parallel_no_ica\": {{\n",
            "    \"model\": \"engine, pruning disabled\",\n",
            "    \"total_s\": {:.6},\n",
            "    \"speedup_vs_serial\": {:.3},\n",
            "    \"outcome_bit_identical\": {}\n",
            "  }},\n",
            "  \"legacy_serial_ica\": {{\n",
            "    \"model\": \"serial loop, standard suite incl. self-whitening ICA on every candidate (the old use_ica: true cost)\",\n",
            "    \"total_s\": {:.6},\n",
            "    \"guarantee\": {:.6}\n",
            "  }},\n",
            "  \"staged_engine_ica\": {{\n",
            "    \"model\": \"cheap stage on all candidates, successive-halving prune, PCA/ICA on survivors with shared whitening workspace\",\n",
            "    \"total_s\": {:.6},\n",
            "    \"survivors\": {},\n",
            "    \"pruned\": {},\n",
            "    \"ica_applied\": {},\n",
            "    \"cheap_stage_s\": {:.6},\n",
            "    \"expensive_stage_s\": {:.6},\n",
            "    \"guarantee\": {:.6}\n",
            "  }},\n",
            "  \"optimizer_speedup_ica_staged_vs_serial\": {:.3},\n",
            "  \"note\": \"the headline speedup is algorithmic (cheap-stage pruning + one shared whitening decomposition) on top of candidate-parallel evaluation, so it survives single-core hosts; the no-ICA arms pin bit-identical selection (tests/optimize_equivalence.rs)\"\n",
            "}}\n"
        ),
        scale.name,
        scale.candidates,
        scale.records,
        scale.dim,
        scale.eval_sample,
        scale.threads,
        host_cores,
        serial_fast_s,
        serial_fast.result.privacy_guarantee,
        parallel_fast_s,
        speedup_parallel,
        !diverged,
        legacy_s,
        legacy_rho,
        engine_ica_s,
        engine_ica.stats.survivors,
        engine_ica.stats.pruned,
        engine_ica.stats.ica_applied,
        engine_ica.stats.cheap_stage_s,
        engine_ica.stats.expensive_stage_s,
        engine_ica.result.privacy_guarantee,
        speedup_ica,
    );
    std::fs::write(&out_path, json).expect("write BENCH_optimize.json");
    println!("  wrote {out_path}");

    if diverged {
        eprintln!("FAIL: parallel engine outcome diverged from the serial reference");
        std::process::exit(1);
    }
    if speedup_ica < scale.required_speedup {
        eprintln!(
            "FAIL: staged ICA-enabled engine only {speedup_ica:.2}x the legacy serial ICA loop (need {:.2}x)",
            scale.required_speedup
        );
        std::process::exit(1);
    }
}
