//! Fleet scale-out: aggregate session throughput at 1 → 2 → 4 nodes,
//! captured into `BENCH_fleet.json`.
//!
//! Every scale point runs the **same** session schedule (one fixed,
//! `--seed`-overridable seed drives every per-session data/protocol
//! seed) against a [`Fleet`] of 1, 2, then 4 nodes. Sessions are
//! latency-dominated — each party mesh simulates a WAN link
//! ([`FaultConfig::send_latency`]) — and each node's worker pool holds
//! exactly one gang, so a single node runs sessions back-to-back.
//! Scaling out multiplies the gangs running at once; since the wall
//! clock is link-latency bubbles, not CPU, aggregate sessions/s rises
//! with node count even on a small machine.
//!
//! Sessions are submitted through round-robin gateways and placed by
//! the hash ring, so the measurement includes cross-node registration
//! forwarding — the scale-out price, not just its payoff.
//!
//! The binary exits non-zero when the 2-node aggregate falls below the
//! 1-node aggregate — the CI regression gate (`--scale quick`).
//!
//! ```text
//! cargo run -p sap-bench --release --bin fleet_scale -- [--scale quick|full] [--seed N] [out.json]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sap_core::session::SapConfig;
use sap_datasets::partition::{partition, PartitionScheme};
use sap_datasets::Dataset;
use sap_fleet::{Fleet, FleetConfig};
use sap_linalg::randn_matrix;
use sap_net::sim::FaultConfig;
use sap_server::ServerConfig;
use std::time::{Duration, Instant};

struct Scale {
    name: &'static str,
    sessions: u64,
    providers: usize,
    records: usize,
    dim: usize,
    block_rows: usize,
    link_latency: Duration,
}

const QUICK: Scale = Scale {
    name: "quick",
    sessions: 8,
    providers: 3,
    records: 240,
    dim: 6,
    block_rows: 16,
    link_latency: Duration::from_millis(3),
};

const FULL: Scale = Scale {
    name: "full",
    sessions: 16,
    providers: 4,
    records: 960,
    dim: 8,
    block_rows: 32,
    link_latency: Duration::from_millis(5),
};

const NODE_COUNTS: [usize; 3] = [1, 2, 4];

fn session_locals(scale: &Scale, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = randn_matrix(scale.dim, scale.records, &mut rng);
    let labels = (0..scale.records).map(|i| i % 2).collect();
    let pooled = Dataset::from_column_matrix(&m, labels, 2);
    partition(
        &pooled,
        scale.providers,
        PartitionScheme::Uniform,
        seed ^ 0x77,
    )
}

fn session_config(scale: &Scale, seed: u64) -> SapConfig {
    SapConfig {
        seed,
        block_rows: scale.block_rows,
        timeout: Duration::from_secs(300),
        fault_config: Some(FaultConfig {
            send_latency: scale.link_latency,
            ..FaultConfig::default()
        }),
        ..SapConfig::quick_test()
    }
}

struct Point {
    nodes: usize,
    total_s: f64,
    sessions_per_s: f64,
    forwarded: u64,
    replaced: u64,
    frames_forwarded: u64,
}

fn run_point(scale: &Scale, nodes: usize, session_seeds: &[u64]) -> Point {
    let fleet = Fleet::in_memory(FleetConfig {
        nodes,
        server: ServerConfig {
            max_parties: scale.providers,
            max_concurrent: session_seeds.len(),
            // One gang per node: scale-out, not a bigger pool, is the
            // only source of parallelism being measured.
            worker_threads: scale.providers + 1,
            ..ServerConfig::default()
        },
        ..FleetConfig::default()
    })
    .expect("build fleet");

    let start = Instant::now();
    let ids: Vec<_> = session_seeds
        .iter()
        .map(|&seed| {
            fleet
                .submit(session_locals(scale, seed), &session_config(scale, seed))
                .expect("admit session")
        })
        .collect();
    for id in ids {
        fleet.wait(id, None).expect("fleet session");
    }
    let total_s = start.elapsed().as_secs_f64();

    let m = fleet.metrics();
    assert_eq!(m.sessions_completed, session_seeds.len() as u64);
    assert_eq!(m.sessions_failed, 0);
    Point {
        nodes,
        total_s,
        sessions_per_s: session_seeds.len() as f64 / total_s,
        forwarded: m.registrations_forwarded,
        replaced: m.registrations_replaced,
        frames_forwarded: m.frames_forwarded,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_fleet.json");
    let mut scale = &QUICK;
    let mut schedule_seed = 0xF1EE5u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => {
                        eprintln!("unknown scale '{other}' (quick|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                schedule_seed = match v.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("--seed takes a u64, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            path => out_path = path.to_string(),
        }
    }

    // One fixed seed derives the whole schedule, identical at every
    // scale point: same sessions, same bytes, only the node count moves.
    let mut schedule_rng = StdRng::seed_from_u64(schedule_seed);
    let session_seeds: Vec<u64> = (0..scale.sessions)
        .map(|_| schedule_rng.next_u64())
        .collect();

    println!(
        "fleet_scale [{}]: {} sessions × ({} providers, {} rows × {} dims), link latency {:?}",
        scale.name, scale.sessions, scale.providers, scale.records, scale.dim, scale.link_latency
    );

    let points: Vec<Point> = NODE_COUNTS
        .iter()
        .map(|&n| {
            let p = run_point(scale, n, &session_seeds);
            println!(
                "  {} node{}: {:.3}s  ({:.2} sessions/s, {} forwarded, {} frames relayed)",
                p.nodes,
                if p.nodes == 1 { " " } else { "s" },
                p.total_s,
                p.sessions_per_s,
                p.forwarded,
                p.frames_forwarded
            );
            p
        })
        .collect();

    let monotone = points
        .windows(2)
        .all(|w| w[1].sessions_per_s >= w[0].sessions_per_s);
    let speedup_2 = points[1].sessions_per_s / points[0].sessions_per_s;
    let speedup_4 = points[2].sessions_per_s / points[0].sessions_per_s;
    println!(
        "  scale-out: 2 nodes {speedup_2:.2}x, 4 nodes {speedup_4:.2}x (monotone: {monotone})"
    );

    let point_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"nodes\": {},\n",
                    "      \"total_s\": {:.6},\n",
                    "      \"sessions_per_s\": {:.3},\n",
                    "      \"registrations_forwarded\": {},\n",
                    "      \"registrations_replaced\": {},\n",
                    "      \"frames_forwarded\": {}\n",
                    "    }}"
                ),
                p.nodes, p.total_s, p.sessions_per_s, p.forwarded, p.replaced, p.frames_forwarded
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet_scale\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"schedule_seed\": {},\n",
            "  \"sessions\": {},\n",
            "  \"providers_per_session\": {},\n",
            "  \"records_per_session\": {},\n",
            "  \"dims\": {},\n",
            "  \"link_latency_ms\": {},\n",
            "  \"points\": [\n{}\n  ],\n",
            "  \"speedup_2_nodes\": {:.3},\n",
            "  \"speedup_4_nodes\": {:.3},\n",
            "  \"monotone\": {},\n",
            "  \"note\": \"identical latency-dominated session schedule at every point; one gang-sized worker pool per node, so aggregate throughput measures scale-out (including cross-node registration forwarding), not pool growth\"\n",
            "}}\n"
        ),
        scale.name,
        schedule_seed,
        scale.sessions,
        scale.providers,
        scale.records,
        scale.dim,
        scale.link_latency.as_millis(),
        point_json.join(",\n"),
        speedup_2,
        speedup_4,
        monotone,
    );
    std::fs::write(&out_path, json).expect("write BENCH_fleet.json");
    println!("  wrote {out_path}");

    // CI gate: a 2-node fleet slower than a single node means the
    // forwarding/membership machinery ate the scale-out.
    if speedup_2 < 1.0 {
        eprintln!("FAIL: 2-node aggregate throughput below the 1-node baseline ({speedup_2:.2}x)");
        std::process::exit(1);
    }
}
