//! Open-loop load harness for the `SapServer` QoS gang scheduler,
//! captured into `BENCH_load.json`.
//!
//! Four main arms, all at **equal offered load** (the same precomputed
//! arrival schedule per arrival model, replayed against both policies):
//!
//! * `{fifo,qos} × {poisson,bursty}` — thousands of short sessions
//!   (80% interactive / 20% batch, batch sessions ~6× heavier) submitted
//!   open-loop (at their scheduled arrival instants, regardless of
//!   completions) against one in-memory [`SapServer`] whose pool fits
//!   exactly one gang — the clean single-server queue. The generator
//!   reports exact per-class end-to-end p50/p90/p99/p999 from raw
//!   samples, plus the server's own per-class queue-wait/service
//!   histograms and scheduler counters.
//!
//! The arrival rate is **calibrated at runtime**: a serial warmup
//! measures per-class service times, and λ is set for a target
//! utilization of the mixed workload — so the offered load tracks the
//! machine instead of hard-coding one box's timings.
//!
//! A separate **shed probe** pressures deadline-aware admission: a long
//! batch blocker occupies the pool while sessions with tiny budgets
//! queue behind it. Under QoS they are shed at admission
//! (`AdmissionShed`, no role ever runs); under FIFO they are admitted
//! anyway and burn gang slots on guaranteed `DeadlineExceeded` failures.
//!
//! Headline + CI gates (exit non-zero on violation):
//!
//! * interactive p99 under QoS ≤ the FIFO baseline at equal offered load
//!   (both arrival models);
//! * FIFO arms never shed (`sessions_shed == 0`), and the generous-budget
//!   QoS main arms shed nothing either (shed-rate sanity: shedding
//!   requires a provably unmeetable budget);
//! * the QoS shed probe sheds, the FIFO probe does not.
//!
//! ```text
//! cargo run -p sap-bench --release --bin load_qos -- [--scale quick|full] [out.json]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use sap_bench::stats::{summarize, Summary};
use sap_core::runtime::{QosClass, SchedPolicy, SchedulerConfig};
use sap_core::session::SapConfig;
use sap_core::SapError;
use sap_datasets::partition::{partition, PartitionScheme};
use sap_datasets::Dataset;
use sap_linalg::randn_matrix;
use sap_net::transport::Endpoint;
use sap_net::SessionId;
use sap_server::{SapServer, ServerConfig, ServerError, ServerMetrics};
use std::time::{Duration, Instant};

const PROVIDERS: usize = 3;
const INTERACTIVE_SHARE: f64 = 0.8;
const UTILIZATION: f64 = 0.85;

struct Scale {
    name: &'static str,
    /// Sessions per arrival schedule (each schedule runs twice: FIFO+QoS).
    sessions: usize,
    interactive_records: usize,
    batch_records: usize,
    dim: usize,
    calibration_runs: usize,
    probe_sessions: usize,
}

const QUICK: Scale = Scale {
    name: "quick",
    sessions: 160,
    interactive_records: 72,
    batch_records: 2_400,
    dim: 6,
    calibration_runs: 4,
    probe_sessions: 12,
};

const FULL: Scale = Scale {
    name: "full",
    sessions: 1_000,
    interactive_records: 72,
    batch_records: 2_400,
    dim: 6,
    calibration_runs: 8,
    probe_sessions: 24,
};

#[derive(Clone, Copy)]
struct Arrival {
    at: Duration,
    class: QosClass,
    seed: u64,
}

fn records_of(scale: &Scale, class: QosClass) -> usize {
    match class {
        QosClass::Interactive => scale.interactive_records,
        QosClass::Batch => scale.batch_records,
    }
}

fn gen_locals(scale: &Scale, class: QosClass, seed: u64) -> Vec<Dataset> {
    let records = records_of(scale, class);
    let mut rng = StdRng::seed_from_u64(seed);
    let m = randn_matrix(scale.dim, records, &mut rng);
    let labels = (0..records).map(|i| i % 2).collect();
    let pooled = Dataset::from_column_matrix(&m, labels, 2);
    partition(&pooled, PROVIDERS, PartitionScheme::Uniform, seed ^ 0x77)
}

fn session_config(class: QosClass, seed: u64, budget: Duration) -> SapConfig {
    let mut cfg = SapConfig {
        seed,
        qos: class,
        session_budget: budget,
        timeout: Duration::from_secs(60),
        ..SapConfig::quick_test()
    };
    if class == QosClass::Batch {
        // Batch sessions are the heavy tail: a bigger optimizer sweep on
        // a bigger dataset, so one batch gang occupying the pool is a
        // real head-of-line block for the interactive sessions behind it.
        cfg.optimizer.candidates = 16;
        cfg.optimizer.eval_sample = 600;
    }
    cfg
}

fn server(scale: &Scale, policy: SchedPolicy) -> SapServer<Endpoint> {
    SapServer::in_memory(ServerConfig {
        max_parties: PROVIDERS,
        // Server-level admission must never be the bottleneck here: the
        // experiment's queue is the pool's gang queue.
        max_concurrent: scale.sessions + scale.probe_sessions + 8,
        max_queued: scale.sessions + scale.probe_sessions + 8,
        // Pool fits exactly one gang: the clean single-server queue.
        worker_threads: PROVIDERS + 1,
        heartbeat_interval: Duration::ZERO,
        reap_after: Duration::from_secs(3600),
        max_session_age: Duration::from_secs(3600),
        scheduler: SchedulerConfig {
            policy,
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("in-memory server")
}

/// Serial warmup: mean service time per class on an idle server.
fn calibrate(scale: &Scale) -> (f64, f64) {
    let srv = server(scale, SchedPolicy::Qos);
    let mut per_class = [0.0f64; 2];
    for (slot, class) in [QosClass::Interactive, QosClass::Batch]
        .into_iter()
        .enumerate()
    {
        let mut total = 0.0;
        for i in 0..scale.calibration_runs {
            let seed = 0xCA11 + (slot * 100 + i) as u64;
            let start = Instant::now();
            let id = srv
                .submit(
                    gen_locals(scale, class, seed),
                    &session_config(class, seed, Duration::from_secs(60)),
                )
                .expect("calibration submit");
            srv.wait(id, Some(Duration::from_secs(60)))
                .expect("calibration session");
            total += start.elapsed().as_secs_f64();
        }
        per_class[slot] = total / scale.calibration_runs as f64;
    }
    (per_class[0], per_class[1])
}

/// The arrival schedule of one arrival model — shared verbatim by the
/// FIFO and QoS runs of that model (equal offered load by construction).
fn schedule(scale: &Scale, bursty: bool, lambda: f64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals = Vec::with_capacity(scale.sessions);
    let mut t = 0.0f64;
    // Bursty: groups of 8 arrive together, gaps scaled to the same mean
    // rate — identical offered load, spikier queue.
    let burst = if bursty { 8 } else { 1 };
    let mut in_burst = 0;
    for i in 0..scale.sessions {
        if in_burst == 0 {
            let u: f64 = rng.next_f64();
            t += -(1.0 - u).ln() / lambda * burst as f64;
            in_burst = burst;
        }
        in_burst -= 1;
        let class = if rng.random_bool(1.0 - INTERACTIVE_SHARE) {
            QosClass::Batch
        } else {
            QosClass::Interactive
        };
        arrivals.push(Arrival {
            at: Duration::from_secs_f64(t),
            class,
            seed: 0x10AD ^ (i as u64) << 4,
        });
    }
    arrivals
}

struct ClassResult {
    e2e: Summary,
    completed: usize,
    shed: usize,
    errors: usize,
}

struct ArmResult {
    interactive: ClassResult,
    batch: ClassResult,
    duration_s: f64,
    metrics: ServerMetrics,
}

/// Replays one arrival schedule against one policy, open-loop: sessions
/// are submitted at their scheduled instants no matter how far behind
/// the server is, and completions are observed by polling so a slow
/// session never delays the measurement of a fast one.
fn run_arm(
    scale: &Scale,
    policy: SchedPolicy,
    arrivals: &[Arrival],
    budget: Duration,
) -> ArmResult {
    let srv = server(scale, policy);
    // Pre-generate every session's inputs so the submitter stays on
    // schedule (dataset generation is off the clock).
    let prepared: Vec<(Vec<Dataset>, SapConfig)> = arrivals
        .iter()
        .map(|a| {
            (
                gen_locals(scale, a.class, a.seed),
                session_config(a.class, a.seed, budget),
            )
        })
        .collect();

    struct Outstanding {
        id: SessionId,
        class: QosClass,
        scheduled: Instant,
    }
    let mut samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut shed = [0usize; 2];
    let mut errors = [0usize; 2];
    let mut completed = [0usize; 2];

    let start = Instant::now();
    let (tx, rx) = std::sync::mpsc::channel::<Outstanding>();
    let wall = std::thread::scope(|scope| {
        let srv = &srv;
        scope.spawn(move || {
            for (arrival, (locals, cfg)) in arrivals.iter().zip(prepared) {
                let scheduled = start + arrival.at;
                if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let id = srv.submit(locals, &cfg).expect("open-loop submit");
                tx.send(Outstanding {
                    id,
                    class: arrival.class,
                    scheduled,
                })
                .expect("collector alive");
            }
            // Dropping tx tells the collector the schedule is exhausted.
        });

        let mut outstanding: Vec<Outstanding> = Vec::new();
        let mut submitter_done = false;
        loop {
            // Drain newly submitted sessions without blocking the poll
            // cadence.
            loop {
                match rx.try_recv() {
                    Ok(o) => outstanding.push(o),
                    Err(std::sync::mpsc::TryRecvError::Empty) => break,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        submitter_done = true;
                        break;
                    }
                }
            }
            let mut i = 0;
            while i < outstanding.len() {
                let status = srv.poll(outstanding[i].id).expect("registered session");
                if matches!(status, sap_core::SessionStatus::Running { .. }) {
                    i += 1;
                    continue;
                }
                let done = outstanding.swap_remove(i);
                let latency = done.scheduled.elapsed().as_secs_f64();
                let slot = done.class.index();
                match srv.wait(done.id, Some(Duration::from_secs(10))) {
                    Ok(_) => {
                        completed[slot] += 1;
                        samples[slot].push(latency);
                    }
                    Err(ServerError::Session(SapError::AdmissionShed { .. })) => {
                        shed[slot] += 1;
                    }
                    Err(_) => {
                        errors[slot] += 1;
                    }
                }
            }
            if submitter_done && outstanding.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        start.elapsed().as_secs_f64()
    });

    let metrics = srv.metrics();
    let class_result = |slot: usize| ClassResult {
        e2e: summarize(&samples[slot]),
        completed: completed[slot],
        shed: shed[slot],
        errors: errors[slot],
    };
    ArmResult {
        interactive: class_result(0),
        batch: class_result(1),
        duration_s: wall,
        metrics,
    }
}

struct ProbeResult {
    shed: usize,
    completed: usize,
    failed: usize,
    duration_s: f64,
}

/// Deadline-shed pressure test: a long batch blocker holds the pool
/// while `probe_sessions` tiny-budget sessions queue behind it.
fn run_probe(scale: &Scale, policy: SchedPolicy) -> ProbeResult {
    let srv = server(scale, policy);
    let start = Instant::now();
    let blocker_seed = 0xB10C;
    let blocker = srv
        .submit(
            gen_locals(scale, QosClass::Batch, blocker_seed),
            &session_config(QosClass::Batch, blocker_seed, Duration::from_secs(60)),
        )
        .expect("probe blocker");
    // Give the blocker time to be admitted; the probes' budgets expire
    // while it still occupies every worker.
    std::thread::sleep(Duration::from_millis(10));
    let ids: Vec<SessionId> = (0..scale.probe_sessions)
        .map(|i| {
            let seed = 0x9808 + i as u64;
            srv.submit(
                gen_locals(scale, QosClass::Interactive, seed),
                &session_config(QosClass::Interactive, seed, Duration::from_millis(5)),
            )
            .expect("probe submit")
        })
        .collect();
    srv.wait(blocker, Some(Duration::from_secs(60)))
        .expect("probe blocker completes");
    let (mut shed, mut completed, mut failed) = (0usize, 0usize, 0usize);
    for id in ids {
        match srv.wait(id, Some(Duration::from_secs(60))) {
            Ok(_) => completed += 1,
            Err(ServerError::Session(SapError::AdmissionShed { .. })) => shed += 1,
            Err(_) => failed += 1,
        }
    }
    ProbeResult {
        shed,
        completed,
        failed,
        duration_s: start.elapsed().as_secs_f64(),
    }
}

fn class_json(label: &str, r: &ClassResult, wait_p99_s: f64, service_p50_s: f64) -> String {
    format!(
        concat!(
            "      \"{}\": {{\n",
            "        \"completed\": {},\n",
            "        \"shed\": {},\n",
            "        \"errors\": {},\n",
            "        \"e2e_mean_s\": {:.6},\n",
            "        \"e2e_p50_s\": {:.6},\n",
            "        \"e2e_p90_s\": {:.6},\n",
            "        \"e2e_p99_s\": {:.6},\n",
            "        \"e2e_p999_s\": {:.6},\n",
            "        \"e2e_max_s\": {:.6},\n",
            "        \"queue_wait_p99_s\": {:.6},\n",
            "        \"service_p50_s\": {:.6}\n",
            "      }}"
        ),
        label,
        r.completed,
        r.shed,
        r.errors,
        r.e2e.mean,
        r.e2e.p50,
        r.e2e.p90,
        r.e2e.p99,
        r.e2e.p999,
        r.e2e.max,
        wait_p99_s,
        service_p50_s,
    )
}

fn arm_json(name: &str, arm: &ArmResult, lambda: f64) -> String {
    let hist = &arm.metrics.latency_histogram;
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"offered_lambda_per_s\": {:.3},\n",
            "      \"duration_s\": {:.3},\n",
            "      \"gangs_promoted\": {},\n",
            "      \"task_steals\": {},\n",
            "      \"sessions_shed\": {},\n",
            "{},\n",
            "{}\n",
            "    }}"
        ),
        name,
        lambda,
        arm.duration_s,
        arm.metrics.gangs_promoted,
        arm.metrics.task_steals,
        arm.metrics.sessions_shed,
        class_json(
            "interactive",
            &arm.interactive,
            hist.interactive.queue_wait.p99().as_secs_f64(),
            hist.interactive.service.p50().as_secs_f64(),
        ),
        class_json(
            "batch",
            &arm.batch,
            hist.batch.queue_wait.p99().as_secs_f64(),
            hist.batch.service.p50().as_secs_f64(),
        ),
    )
}

fn main() {
    let mut out_path = String::from("BENCH_load.json");
    let mut scale = &QUICK;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => {
                        eprintln!("unknown scale '{other}' (quick|full)");
                        std::process::exit(2);
                    }
                };
            }
            path => out_path = path.to_string(),
        }
    }

    println!(
        "load_qos [{}]: {} sessions/arm × 4 arms, {}/{} interactive/batch records, {} providers",
        scale.name, scale.sessions, scale.interactive_records, scale.batch_records, PROVIDERS,
    );

    let (service_i, service_b) = calibrate(scale);
    let mixed = INTERACTIVE_SHARE * service_i + (1.0 - INTERACTIVE_SHARE) * service_b;
    let lambda = UTILIZATION / mixed;
    // Generous budget for the main arms: nothing should shed — the
    // measured contrast is pure scheduling, and shed-rate sanity (QoS
    // sheds only provably unmeetable budgets) is a gate below.
    let budget = Duration::from_secs(120);
    println!(
        "  calibration: interactive {:.1}ms, batch {:.1}ms, mixed {:.1}ms -> lambda {lambda:.1}/s (target utilization {UTILIZATION})",
        service_i * 1e3,
        service_b * 1e3,
        mixed * 1e3
    );

    let poisson = schedule(scale, false, lambda, 0x5EED_0001);
    let bursty = schedule(scale, true, lambda, 0x5EED_0002);

    let mut arms: Vec<(&str, ArmResult)> = Vec::new();
    for (model, arrivals) in [("poisson", &poisson), ("bursty", &bursty)] {
        for policy in [SchedPolicy::Fifo, SchedPolicy::Qos] {
            let tag = match policy {
                SchedPolicy::Fifo => "fifo",
                SchedPolicy::Qos => "qos",
            };
            let arm = run_arm(scale, policy, arrivals, budget);
            println!(
                "  {tag}_{model}: {:.1}s wall, interactive p50 {:.1}ms p99 {:.1}ms | batch p99 {:.1}ms | shed {} errors {}",
                arm.duration_s,
                arm.interactive.e2e.p50 * 1e3,
                arm.interactive.e2e.p99 * 1e3,
                arm.batch.e2e.p99 * 1e3,
                arm.metrics.sessions_shed,
                arm.interactive.errors + arm.batch.errors,
            );
            arms.push((
                match (tag, model) {
                    ("fifo", "poisson") => "fifo_poisson",
                    ("qos", "poisson") => "qos_poisson",
                    ("fifo", "bursty") => "fifo_bursty",
                    _ => "qos_bursty",
                },
                arm,
            ));
        }
    }

    let probe_qos = run_probe(scale, SchedPolicy::Qos);
    let probe_fifo = run_probe(scale, SchedPolicy::Fifo);
    println!(
        "  shed probe: qos shed {}/{} in {:.2}s | fifo shed {} (deadline-failed {}) in {:.2}s",
        probe_qos.shed,
        scale.probe_sessions,
        probe_qos.duration_s,
        probe_fifo.shed,
        probe_fifo.failed,
        probe_fifo.duration_s,
    );

    let arm_of = |name: &str| &arms.iter().find(|(n, _)| *n == name).expect("arm ran").1;
    let headline: Vec<(&str, f64, f64)> = vec![
        (
            "poisson",
            arm_of("fifo_poisson").interactive.e2e.p99,
            arm_of("qos_poisson").interactive.e2e.p99,
        ),
        (
            "bursty",
            arm_of("fifo_bursty").interactive.e2e.p99,
            arm_of("qos_bursty").interactive.e2e.p99,
        ),
    ];
    for (model, fifo_p99, qos_p99) in &headline {
        println!(
            "  headline [{model}]: interactive p99 fifo {:.1}ms -> qos {:.1}ms ({:.2}x)",
            fifo_p99 * 1e3,
            qos_p99 * 1e3,
            fifo_p99 / qos_p99.max(1e-9),
        );
    }

    let arm_sections: Vec<String> = arms
        .iter()
        .map(|(name, arm)| arm_json(name, arm, lambda))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"load_qos\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"sessions_per_arm\": {},\n",
            "  \"providers_per_session\": {},\n",
            "  \"interactive_share\": {},\n",
            "  \"utilization_target\": {},\n",
            "  \"interactive_records\": {},\n",
            "  \"batch_records\": {},\n",
            "  \"calibration\": {{\n",
            "    \"interactive_service_mean_s\": {:.6},\n",
            "    \"batch_service_mean_s\": {:.6},\n",
            "    \"offered_lambda_per_s\": {:.3}\n",
            "  }},\n",
            "  \"arms\": {{\n",
            "{}\n",
            "  }},\n",
            "  \"shed_probe\": {{\n",
            "    \"probe_sessions\": {},\n",
            "    \"qos\": {{ \"shed\": {}, \"completed\": {}, \"failed\": {}, \"duration_s\": {:.3} }},\n",
            "    \"fifo\": {{ \"shed\": {}, \"completed\": {}, \"failed\": {}, \"duration_s\": {:.3} }}\n",
            "  }},\n",
            "  \"headline\": {{\n",
            "    \"fifo_interactive_p99_s\": {:.6},\n",
            "    \"qos_interactive_p99_s\": {:.6},\n",
            "    \"improvement\": {:.3}\n",
            "  }},\n",
            "  \"note\": \"open-loop arrivals, identical schedules per arrival model across policies (equal offered load); e2e latency is scheduled-arrival to completion from raw samples; queue-wait/service quantiles come from the server's log-scale histograms; the shed probe pressures deadline-aware admission with provably unmeetable budgets\"\n",
            "}}\n"
        ),
        scale.name,
        scale.sessions,
        PROVIDERS,
        INTERACTIVE_SHARE,
        UTILIZATION,
        scale.interactive_records,
        scale.batch_records,
        service_i,
        service_b,
        lambda,
        arm_sections.join(",\n"),
        scale.probe_sessions,
        probe_qos.shed,
        probe_qos.completed,
        probe_qos.failed,
        probe_qos.duration_s,
        probe_fifo.shed,
        probe_fifo.completed,
        probe_fifo.failed,
        probe_fifo.duration_s,
        headline[0].1,
        headline[0].2,
        headline[0].1 / headline[0].2.max(1e-9),
    );
    std::fs::write(&out_path, json).expect("write BENCH_load.json");
    println!("  wrote {out_path}");

    // CI gates.
    let mut failed = false;
    for (model, fifo_p99, qos_p99) in &headline {
        if qos_p99 > fifo_p99 {
            eprintln!(
                "FAIL [{model}]: QoS interactive p99 {:.1}ms above the FIFO baseline {:.1}ms at equal offered load",
                qos_p99 * 1e3,
                fifo_p99 * 1e3
            );
            failed = true;
        }
    }
    for (name, arm) in &arms {
        if name.starts_with("fifo") && arm.metrics.sessions_shed > 0 {
            eprintln!("FAIL [{name}]: FIFO policy must never shed");
            failed = true;
        }
        if name.starts_with("qos") && arm.metrics.sessions_shed > 0 {
            eprintln!(
                "FAIL [{name}]: QoS shed {} sessions despite generous budgets (shed must require a provably unmeetable budget)",
                arm.metrics.sessions_shed
            );
            failed = true;
        }
        let errors = arm.interactive.errors + arm.batch.errors;
        if errors > 0 {
            eprintln!("FAIL [{name}]: {errors} sessions errored under clean load");
            failed = true;
        }
    }
    if probe_qos.shed == 0 {
        eprintln!("FAIL [probe]: QoS shed nothing under provably unmeetable budgets");
        failed = true;
    }
    if probe_fifo.shed > 0 {
        eprintln!("FAIL [probe]: FIFO probe shed {} sessions", probe_fifo.shed);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
