//! Regenerates every figure of the paper's evaluation as text tables.
//!
//! ```text
//! cargo run -p sap-bench --release --bin figures -- --fig all --scale quick
//! cargo run -p sap-bench --release --bin figures -- --fig 5 --scale full
//! ```

use sap_bench::report::{f2s, f3, render_histogram, render_table};
use sap_bench::{ablation, fig2, fig3, fig4, fig5_fig6, Scale};
use sap_datasets::UciDataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig = String::from("all");
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                i += 1;
                fig = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--fig needs a value"));
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("full") => Scale::Full,
                    _ => usage("--scale takes quick|full"),
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed takes a u64"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let run_all = fig == "all";
    if run_all || fig == "2" {
        figure2(scale, seed);
    }
    if run_all || fig == "3" {
        figure3(scale, seed);
    }
    if run_all || fig == "4" {
        figure4();
    }
    if run_all || fig == "5" {
        figure56(fig5_fig6::FigClassifier::Knn, scale, seed);
    }
    if run_all || fig == "6" {
        figure56(fig5_fig6::FigClassifier::SvmRbf, scale, seed);
    }
    if run_all || fig == "ablation" {
        ablations(seed);
    }
}

fn ablations(seed: u64) {
    println!("== Ablations (DESIGN.md §8) ==\n");

    let rows = ablation::noise_sweep(
        UciDataset::Diabetes,
        &[0.0, 0.02, 0.05, 0.1, 0.2, 0.4],
        seed,
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.sigma),
                f3(r.privacy),
                format!("{:.1}%", 100.0 * r.knn_accuracy),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Noise sweep (Diabetes): privacy vs KNN accuracy",
            &["sigma", "min privacy", "KNN accuracy"],
            &table,
        )
    );

    let rows = ablation::composition_ablation(UciDataset::Diabetes, 0.05, seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.variant.to_string(), f3(r.privacy)])
        .collect();
    println!(
        "{}",
        render_table(
            "Perturbation composition at sigma = 0.05 (Diabetes)",
            &["variant", "min privacy"],
            &table,
        )
    );

    let rows = ablation::known_point_sweep(UciDataset::Diabetes, 0.05, &[0, 2, 4, 8, 16, 32], seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.known_points.to_string(),
                r.privacy.map_or("n/a".into(), f3),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Distance-inference attack vs known-point budget (Diabetes, sigma 0.05)",
            &["known points", "min privacy"],
            &table,
        )
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: figures [--fig all|2|3|4|5|6|ablation] [--scale quick|full] [--seed N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn figure2(scale: Scale, seed: u64) {
    println!("== Figure 2: random vs optimized perturbation privacy guarantee ==\n");
    let mut rows = Vec::new();
    for ds in [UciDataset::Diabetes, UciDataset::Votes, UciDataset::Iris] {
        let r = fig2::run(ds, scale, seed);
        rows.push(vec![
            r.dataset.to_string(),
            f3(r.random_mean()),
            f3(r.optimized_mean()),
            f3(r.dominance()),
        ]);
        if ds == UciDataset::Diabetes {
            let lo = 0.0;
            let hi = r
                .optimized
                .iter()
                .chain(&r.random)
                .fold(0.0_f64, |m, &x| m.max(x))
                * 1.05;
            println!("Diabetes ρ distribution (random):");
            println!("{}", render_histogram(&r.random, lo, hi, 10));
            println!("Diabetes ρ distribution (optimized):");
            println!("{}", render_histogram(&r.optimized, lo, hi, 10));
        }
    }
    println!(
        "{}",
        render_table(
            "Figure 2 summary",
            &[
                "dataset",
                "mean rho (random)",
                "mean rho (optimized)",
                "P(opt > rand)"
            ],
            &rows,
        )
    );
}

fn figure3(scale: Scale, seed: u64) {
    println!("== Figure 3: optimality rates vs #parties ==\n");
    let rows = fig3::run(scale, seed);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} - {}", r.dataset, r.scheme),
                r.parties.to_string(),
                f3(r.optimality_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 3: mean optimality rate per party",
            &["series", "# parties", "optimality rate"],
            &table,
        )
    );
}

fn figure4() {
    println!("== Figure 4: lower bound on #parties vs satisfaction level ==\n");
    let curves = fig4::run();
    let axis = fig4::s0_axis();
    let header: Vec<String> = std::iter::once("series".to_string())
        .chain(axis.iter().map(|s| format!("{s:.2}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            std::iter::once(format!("{}: opt-rate {}", c.dataset, c.opt_rate))
                .chain(
                    c.points
                        .iter()
                        .map(|(_, k)| k.map_or_else(|| "∞".to_string(), |k| k.to_string())),
                )
                .collect()
        })
        .collect();
    println!(
        "{}",
        render_table("Figure 4: minimum # of parties", &header_refs, &table)
    );
}

fn figure56(classifier: fig5_fig6::FigClassifier, scale: Scale, seed: u64) {
    let name = match classifier {
        fig5_fig6::FigClassifier::Knn => "KNN",
        fig5_fig6::FigClassifier::SvmRbf => "SVM(RBF)",
    };
    println!(
        "== Figure {}: accuracy deviation for the {name} classifier ==\n",
        classifier.figure()
    );
    let rows = fig5_fig6::run(classifier, scale, seed);
    let mut by_dataset: std::collections::BTreeMap<&str, (Option<f64>, Option<f64>, f64)> =
        std::collections::BTreeMap::new();
    for r in &rows {
        let entry = by_dataset.entry(r.dataset).or_insert((None, None, 0.0));
        match r.scheme {
            "Uniform" => entry.0 = Some(r.deviation),
            _ => entry.1 = Some(r.deviation),
        }
        entry.2 = r.baseline_accuracy;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .filter(|r| r.scheme == "Uniform")
        .map(|r| {
            let class_dev = rows
                .iter()
                .find(|q| q.dataset == r.dataset && q.scheme == "Class")
                .map_or(f64::NAN, |q| q.deviation);
            vec![
                r.dataset.to_string(),
                format!("{:.1}%", 100.0 * r.baseline_accuracy),
                f2s(r.deviation),
                f2s(class_dev),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Figure {} ({name}) — deviation in accuracy points",
                classifier.figure()
            ),
            &["dataset", "baseline acc", "SAP - Uniform", "SAP - Class"],
            &table,
        )
    );
}
