//! Transport-scale benchmark for the readiness-driven reactor backend,
//! captured into `BENCH_net.json` (schema v2).
//!
//! Three arms:
//!
//! * **chunked pipeline throughput** — the streaming dataset pipeline
//!   (encode → seal → transport → open → decode) over the in-memory hub:
//!   the same measurement as `net_baseline`'s chunked arm, so this is
//!   the continuity metric against the v1 baseline (411 MiB/s on the
//!   original bench host). It isolates the data plane the reactor work
//!   optimised (wire v4, envelope v4, pooled frames) from the loopback
//!   socket cost that dominates single-core TCP runs.
//! * **chunked throughput over real sockets** — the same pipeline
//!   through both TCP backends: the blocking thread-per-connection
//!   reference (`SAP_NET_BACKEND=threaded`) and the reactor (default).
//!   On a multi-core host the reactor's coalesced writev and tuned
//!   socket buffers win outright; on a single shared core both backends
//!   sit on the loopback copy/context-switch floor, so the gate allows a
//!   small noise band.
//! * **idle-lane scale** — N inbound connections parked on ONE reactor
//!   thread; measures resident memory and poller wakeups/s while idle,
//!   then proves the lanes are still live by pushing a frame through
//!   after the idle window. The thread-per-connection model would need N
//!   OS threads for the same job.
//!
//! Each throughput arm reports its best timed round: scheduler noise
//! only ever adds time, so the per-round minimum is the stable estimate
//! of what the stack can do.
//!
//! The binary exits non-zero when reactor TCP throughput drops below
//! the threaded baseline's noise band (every scale — the CI smoke
//! gate), and additionally enforces the PR acceptance bars at
//! `--scale full`: chunked pipeline throughput ≥ 1.3× the 411 MiB/s v1
//! baseline and ≥ 1000 idle lanes held on one reactor thread.
//!
//! ```text
//! cargo run -p sap-bench --release --bin net_scale -- [--scale quick|full] [out.json]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_core::link::{self, Inbound};
use sap_core::messages::{SapMessage, SlotTag};
use sap_datasets::Dataset;
use sap_linalg::randn_matrix;
use sap_net::node::Node;
use sap_net::tcp::{local_mesh_with, Backend};
use sap_net::transport::InMemoryHub;
use sap_net::{wire, PartyId, ReactorTransport};
use std::hint::black_box;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The chunked-pipeline throughput recorded by `net_baseline` (schema
/// v1) on the original bench host — the number the reactor must beat by
/// 1.3× at full scale.
const V1_CHUNKED_BASELINE_MIBPS: f64 = 411.0;

struct Scale {
    name: &'static str,
    records: usize,
    dim: usize,
    block_rows: usize,
    iters: usize,
    idle_lanes: usize,
    idle_window: Duration,
}

const QUICK: Scale = Scale {
    name: "quick",
    records: 6_000,
    dim: 16,
    block_rows: 512,
    iters: 3,
    idle_lanes: 256,
    idle_window: Duration::from_millis(1_500),
};

const FULL: Scale = Scale {
    name: "full",
    records: 20_000,
    dim: 16,
    block_rows: 512,
    iters: 7,
    idle_lanes: 1_000,
    idle_window: Duration::from_secs(3),
};

fn dataset(scale: &Scale) -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    let m = randn_matrix(scale.dim, scale.records, &mut rng);
    let labels = (0..scale.records).map(|i| i % 2).collect();
    Dataset::from_column_matrix(&m, labels, 2)
}

/// Streams the dataset `iters` times (plus a warm-up) from lane 1 to
/// lane 2 over real localhost TCP on the given backend; returns MiB/s of
/// encoded payload through the full pipeline.
fn tcp_chunked_mibps(backend: Backend, scale: &Scale, data: &Dataset, payload_mib: f64) -> f64 {
    let mut mesh = local_mesh_with(&[PartyId(1), PartyId(2)], backend).expect("bind bench lanes");
    let rx_lane = mesh.pop().expect("receiver lane");
    let tx_lane = mesh.pop().expect("sender lane");
    let node_rx = Node::new(rx_lane, 42);
    let node_tx = Node::new(tx_lane, 42);

    let rounds = scale.iters + 1; // first round is warm-up
    let block_rows = scale.block_rows;
    let data = data.clone();
    let sender = std::thread::spawn(move || {
        for _ in 0..rounds {
            link::send_dataset(&node_tx, PartyId(2), false, SlotTag(7), &data, block_rows)
                .expect("stream dataset");
        }
        node_tx // keep the lane alive until every frame is out
    });

    let recv_round = || {
        let (_, inbound) =
            link::recv_message(&node_rx, Duration::from_secs(60)).expect("receive stream");
        let Inbound::Data(stream) = inbound else {
            panic!("expected data stream");
        };
        black_box(stream.into_dataset().expect("reassemble dataset"));
    };
    recv_round(); // warm-up: connect handshake + pool fill
    let mut best = f64::INFINITY;
    for _ in 0..scale.iters {
        let start = Instant::now();
        recv_round();
        best = best.min(start.elapsed().as_secs_f64());
    }
    sender.join().expect("sender thread");
    payload_mib / best
}

/// The v1-continuity arm: streams the dataset over the in-memory hub —
/// the exact measurement `net_baseline`'s chunked arm made when it
/// recorded the 411 MiB/s v1 baseline — and returns the best round's
/// MiB/s. Send, receive, and reassembly all run on this thread, so the
/// number tracks the data plane (encode → seal → open → decode) alone.
fn hub_chunked_mibps(scale: &Scale, data: &Dataset, payload_mib: f64) -> f64 {
    let hub = InMemoryHub::new();
    let node_tx = Node::new(hub.endpoint(PartyId(1)), 42);
    let node_rx = Node::new(hub.endpoint(PartyId(2)), 42);
    let round = || {
        link::send_dataset(
            &node_tx,
            PartyId(2),
            false,
            SlotTag(7),
            data,
            scale.block_rows,
        )
        .expect("stream dataset");
        let (_, inbound) =
            link::recv_message(&node_rx, Duration::from_secs(60)).expect("receive stream");
        let Inbound::Data(stream) = inbound else {
            panic!("expected data stream");
        };
        black_box(stream.into_dataset().expect("reassemble dataset"));
    };
    round(); // warm-up: pool fill
    let mut best = f64::INFINITY;
    for _ in 0..scale.iters {
        let start = Instant::now();
        round();
        best = best.min(start.elapsed().as_secs_f64());
    }
    payload_mib / best
}

/// Resident set size of this process in MiB, from `/proc/self/status`.
fn rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

struct IdleReport {
    lanes: usize,
    rss_mib: f64,
    wakeups_per_s: f64,
    post_idle_delivery_ok: bool,
}

/// Parks `lanes` identified inbound connections on one reactor thread,
/// measures wakeups/s and RSS over an idle window, then proves liveness
/// by pushing one frame through a parked lane.
fn idle_lanes(scale: &Scale) -> IdleReport {
    let lane = ReactorTransport::bind(PartyId(0)).expect("bind idle-arm reactor");
    let addr = lane.local_addr();

    let mut clients = Vec::with_capacity(scale.idle_lanes);
    for i in 0..scale.idle_lanes {
        let mut stream = TcpStream::connect(addr).expect("connect idle lane");
        stream.set_nodelay(true).ok();
        stream
            .write_all(&(1_000 + i as u64).to_le_bytes())
            .expect("send lane ident");
        clients.push(stream);
        // Give the single-threaded acceptor room to drain the backlog.
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Wait until the reactor has accepted every lane.
    let deadline = Instant::now() + Duration::from_secs(30);
    while (lane.stats().accepted as usize) < scale.idle_lanes {
        assert!(
            Instant::now() < deadline,
            "reactor accepted only {}/{} lanes within 30s",
            lane.stats().accepted,
            scale.idle_lanes
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let before = lane.stats();
    std::thread::sleep(scale.idle_window);
    let after = lane.stats();
    let window_s = scale.idle_window.as_secs_f64();
    let wakeups_per_s = (after.wakeups - before.wakeups) as f64 / window_s;

    // The parked lanes must still be live: push a frame through the last
    // one and receive it on the reactor side.
    let last = clients.last_mut().expect("at least one lane");
    let payload = b"still alive";
    last.write_all(&(payload.len() as u32).to_le_bytes())
        .expect("frame length");
    last.write_all(payload).expect("frame payload");
    let got = sap_net::Transport::recv_timeout(&lane, Duration::from_secs(5));
    let post_idle_delivery_ok = matches!(
        &got,
        Ok((from, bytes))
            if *from == PartyId(1_000 + scale.idle_lanes as u64 - 1)
                && bytes.as_ref() == payload
    );

    IdleReport {
        lanes: scale.idle_lanes,
        rss_mib: rss_mib(),
        wakeups_per_s,
        post_idle_delivery_ok,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_net.json");
    let mut scale = &QUICK;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => {
                        eprintln!("unknown scale '{other}' (quick|full)");
                        std::process::exit(2);
                    }
                };
            }
            path => out_path = path.to_string(),
        }
    }

    let data = dataset(scale);
    let msg = SapMessage::PerturbedData {
        slot: SlotTag(7),
        data: data.clone(),
    };
    let payload_bytes = wire::to_bytes(&msg).expect("encode").len();
    let payload_mib = payload_bytes as f64 / (1024.0 * 1024.0);
    println!(
        "net_scale [{}]: {} records x {} dims ({:.2} MiB encoded), {} timed rounds",
        scale.name, scale.records, scale.dim, payload_mib, scale.iters
    );

    let hub_mibps = hub_chunked_mibps(scale, &data, payload_mib);
    let hub_vs_v1 = hub_mibps / V1_CHUNKED_BASELINE_MIBPS;
    println!(
        "  chunked pipeline (hub):  {hub_mibps:.1} MiB/s = {hub_vs_v1:.2}x of the 411 MiB/s v1 baseline"
    );
    let threaded_mibps = tcp_chunked_mibps(Backend::Threaded, scale, &data, payload_mib);
    println!("  threaded TCP backend: {threaded_mibps:.1} MiB/s");
    let reactor_mibps = tcp_chunked_mibps(Backend::Reactor, scale, &data, payload_mib);
    println!("  reactor  TCP backend: {reactor_mibps:.1} MiB/s");
    let vs_threaded = reactor_mibps / threaded_mibps;
    println!("  reactor vs threaded: {vs_threaded:.2}x");

    let idle = idle_lanes(scale);
    println!(
        "  idle lanes: {} on one reactor thread, {:.1} wakeups/s, RSS {:.1} MiB, post-idle delivery {}",
        idle.lanes,
        idle.wakeups_per_s,
        idle.rss_mib,
        if idle.post_idle_delivery_ok { "ok" } else { "FAILED" }
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"net_scale\",\n",
            "  \"version\": 2,\n",
            "  \"scale\": \"{}\",\n",
            "  \"workload\": \"chunked dataset exchange {} records x {} dims over localhost TCP\",\n",
            "  \"payload_bytes\": {},\n",
            "  \"block_rows\": {},\n",
            "  \"v1_chunked_baseline_mibps\": {:.1},\n",
            "  \"hub_chunked_mibps\": {:.1},\n",
            "  \"hub_vs_v1_baseline\": {:.2},\n",
            "  \"threaded_tcp_mibps\": {:.1},\n",
            "  \"reactor_tcp_mibps\": {:.1},\n",
            "  \"reactor_vs_threaded\": {:.2},\n",
            "  \"idle_lanes\": {{\n",
            "    \"lanes\": {},\n",
            "    \"reactor_threads\": 1,\n",
            "    \"idle_window_s\": {:.1},\n",
            "    \"wakeups_per_s\": {:.1},\n",
            "    \"rss_mib\": {:.1},\n",
            "    \"post_idle_delivery_ok\": {}\n",
            "  }},\n",
            "  \"note\": \"all throughput arms run the identical encode/seal/decode pipeline and report their best timed round. hub_chunked is the same measurement that produced the 411 MiB/s v1 baseline; the TCP arms add real loopback sockets, whose copy/context-switch floor dominates on single-core hosts.\"\n",
            "}}\n"
        ),
        scale.name,
        scale.records,
        scale.dim,
        payload_bytes,
        scale.block_rows,
        V1_CHUNKED_BASELINE_MIBPS,
        hub_mibps,
        hub_vs_v1,
        threaded_mibps,
        reactor_mibps,
        vs_threaded,
        idle.lanes,
        scale.idle_window.as_secs_f64(),
        idle.wakeups_per_s,
        idle.rss_mib,
        idle.post_idle_delivery_ok,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_net.json");
    println!("  wrote {out_path}");

    // CI smoke gate (every scale): the reactor must not regress below the
    // blocking reference beyond scheduler noise, and parked lanes must
    // stay live. The band absorbs run-to-run jitter on shared single-core
    // runners, where both backends sit on the same loopback floor.
    const TCP_NOISE_BAND: f64 = 0.85;
    if reactor_mibps < threaded_mibps * TCP_NOISE_BAND {
        eprintln!(
            "FAIL: reactor throughput below the threaded baseline's noise band \
             ({reactor_mibps:.1} < {TCP_NOISE_BAND} x {threaded_mibps:.1} MiB/s)"
        );
        std::process::exit(1);
    }
    if !idle.post_idle_delivery_ok {
        eprintln!("FAIL: a parked idle lane did not deliver after the idle window");
        std::process::exit(1);
    }
    // Full-scale acceptance bars (bench host).
    if scale.name == "full" {
        if hub_vs_v1 < 1.3 {
            eprintln!(
                "FAIL: chunked pipeline throughput below 1.3x the v1 baseline \
                 ({hub_mibps:.1} MiB/s = {hub_vs_v1:.2}x of {V1_CHUNKED_BASELINE_MIBPS} MiB/s)"
            );
            std::process::exit(1);
        }
        if idle.lanes < 1_000 {
            eprintln!(
                "FAIL: idle-lane arm held only {} lanes (< 1000)",
                idle.lanes
            );
            std::process::exit(1);
        }
    }
}
