//! Concurrent-vs-serial SAP session throughput through the `SapServer`
//! runtime, captured into `BENCH_server.json`.
//!
//! Both arms run the *same* 8 sessions over real localhost TCP with the
//! same simulated WAN link latency ([`FaultConfig::send_latency`], applied
//! identically to both arms — apples to apples):
//!
//! * **serial** — the pre-server deployment model: one process, one
//!   session; each session gets a fresh TCP mesh, runs to completion, and
//!   tears down before the next starts.
//! * **concurrent** — all 8 sessions submitted to one [`SapServer`]:
//!   shared TCP lanes (session-multiplexed by the v3 envelope), shared
//!   fixed worker pool, admission control on.
//!
//! What the speedup measures: a session spends most of its wall clock in
//! *link-latency bubbles* (SAP's phases serialize across parties). A
//! multi-session runtime overlaps one session's bubbles with its
//! siblings' work, so aggregate throughput scales until the worker pool
//! — or the CPU — saturates. CPU-bound work does not multiply on a small
//! machine (this box may have a single core); latency hiding does.
//!
//! The binary exits non-zero when concurrent aggregate throughput falls
//! below the serial baseline — the CI regression gate.
//!
//! ```text
//! cargo run -p sap-bench --release --bin server_throughput -- [--scale quick|full] [--seed N] [out.json]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sap_bench::stats::{summarize, time};
use sap_core::session::{run_session_over, SapConfig, MINER_ID};
use sap_core::SapError;
use sap_datasets::partition::{partition, PartitionScheme};
use sap_datasets::Dataset;
use sap_linalg::randn_matrix;
use sap_net::sim::{FaultConfig, FaultyTransport};
use sap_net::tcp::local_mesh;
use sap_net::{PartyId, WireCodec};
use sap_server::{SapServer, ServerConfig};
use std::time::{Duration, Instant};

struct Scale {
    name: &'static str,
    sessions: u64,
    providers: usize,
    records: usize,
    dim: usize,
    block_rows: usize,
    link_latency: Duration,
}

const QUICK: Scale = Scale {
    name: "quick",
    sessions: 8,
    providers: 4,
    records: 480,
    dim: 8,
    block_rows: 16,
    link_latency: Duration::from_millis(3),
};

const FULL: Scale = Scale {
    name: "full",
    sessions: 8,
    providers: 4,
    records: 2_400,
    dim: 12,
    block_rows: 32,
    link_latency: Duration::from_millis(5),
};

fn session_locals(scale: &Scale, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = randn_matrix(scale.dim, scale.records, &mut rng);
    let labels = (0..scale.records).map(|i| i % 2).collect();
    let pooled = Dataset::from_column_matrix(&m, labels, 2);
    partition(
        &pooled,
        scale.providers,
        PartitionScheme::Uniform,
        seed ^ 0x77,
    )
}

fn session_config(scale: &Scale, seed: u64) -> SapConfig {
    SapConfig {
        seed,
        block_rows: scale.block_rows,
        timeout: Duration::from_secs(300),
        fault_config: Some(FaultConfig {
            send_latency: scale.link_latency,
            ..FaultConfig::default()
        }),
        ..SapConfig::quick_test()
    }
}

/// One session the old way: fresh mesh, dedicated run, teardown.
fn run_serial_session(scale: &Scale, seed: u64) -> Result<(), SapError> {
    let mut ids: Vec<PartyId> = (0..scale.providers as u64).map(PartyId).collect();
    ids.push(MINER_ID);
    let mut mesh = local_mesh(&ids).expect("bind serial mesh");
    let miner = mesh.pop().expect("miner endpoint");
    let config = session_config(scale, seed);
    let faults = config.fault_config.expect("latency model set");
    let providers: Vec<_> = mesh
        .into_iter()
        .map(|t| FaultyTransport::new(t, faults))
        .collect();
    let miner = FaultyTransport::new(miner, faults);
    // The per-endpoint fault config is identical (latency only, no random
    // faults), matching how the server wraps per-session endpoints.
    run_session_over(
        session_locals(scale, seed),
        &config,
        providers,
        miner,
        WireCodec,
    )
    .map(|_| ())
}

fn main() {
    let mut out_path = String::from("BENCH_server.json");
    let mut scale = &QUICK;
    let mut schedule_seed = 0xBE5Cu64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => {
                        eprintln!("unknown scale '{other}' (quick|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                schedule_seed = match v.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("--seed takes a u64, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            path => out_path = path.to_string(),
        }
    }

    // The whole session schedule — every per-session data/protocol seed,
    // in both arms — derives from one fixed (CLI-overridable) seed drawn
    // up front. The two arms can then never drift apart, and reruns are
    // exactly reproducible: same seed, same sessions, same bytes.
    let mut schedule_rng = StdRng::seed_from_u64(schedule_seed);
    let session_seeds: Vec<u64> = (0..scale.sessions)
        .map(|_| schedule_rng.next_u64())
        .collect();

    let total_rows = scale.records as u64 * scale.sessions;
    println!(
        "server_throughput [{}]: {} sessions × ({} providers, {} rows × {} dims), link latency {:?}",
        scale.name,
        scale.sessions,
        scale.providers,
        scale.records,
        scale.dim,
        scale.link_latency
    );

    // Serial baseline: sessions one after another, fresh mesh each. Each
    // session is timed individually so the baseline also yields a
    // per-session latency distribution.
    let serial_start = Instant::now();
    let serial_samples: Vec<f64> = session_seeds
        .iter()
        .map(|&seed| {
            let (result, secs) = time(|| run_serial_session(scale, seed));
            result.expect("serial session");
            secs
        })
        .collect();
    let serial_s = serial_start.elapsed().as_secs_f64();
    let serial_lat = summarize(&serial_samples);
    println!(
        "  serial:     {serial_s:.3}s  ({:.2} sessions/s, per-session p50 {:.3}s p99 {:.3}s)",
        scale.sessions as f64 / serial_s,
        serial_lat.p50,
        serial_lat.p99
    );

    // Concurrent arm: same sessions through one SapServer.
    let server = SapServer::local_tcp(ServerConfig {
        max_parties: scale.providers,
        max_concurrent: scale.sessions as usize,
        ..ServerConfig::default()
    })
    .expect("bind server lanes");
    let (_, concurrent_s) = time(|| {
        let ids: Vec<_> = session_seeds
            .iter()
            .map(|&seed| {
                server
                    .submit(session_locals(scale, seed), &session_config(scale, seed))
                    .expect("admit session")
            })
            .collect();
        for id in ids {
            server.wait(id, None).expect("concurrent session");
        }
    });
    let metrics = server.metrics();
    println!(
        "  concurrent: {concurrent_s:.3}s  ({:.2} sessions/s, pool {} workers)",
        scale.sessions as f64 / concurrent_s,
        server.pool_capacity()
    );

    let speedup = serial_s / concurrent_s;
    println!("  aggregate speedup: {speedup:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"server_throughput\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"schedule_seed\": {},\n",
            "  \"sessions\": {},\n",
            "  \"providers_per_session\": {},\n",
            "  \"records_per_session\": {},\n",
            "  \"dims\": {},\n",
            "  \"block_rows\": {},\n",
            "  \"link_latency_ms\": {},\n",
            "  \"total_rows\": {},\n",
            "  \"serial\": {{\n",
            "    \"model\": \"one process = one session: fresh TCP mesh per session, run, teardown\",\n",
            "    \"total_s\": {:.6},\n",
            "    \"sessions_per_s\": {:.3},\n",
            "    \"rows_per_s\": {:.1},\n",
            "    \"session_p50_s\": {:.6},\n",
            "    \"session_p99_s\": {:.6}\n",
            "  }},\n",
            "  \"concurrent\": {{\n",
            "    \"model\": \"one SapServer: shared session-muxed TCP lanes + fixed actor pool\",\n",
            "    \"total_s\": {:.6},\n",
            "    \"sessions_per_s\": {:.3},\n",
            "    \"rows_per_s\": {:.1},\n",
            "    \"pool_workers\": {},\n",
            "    \"bytes_sealed\": {},\n",
            "    \"frames_routed\": {},\n",
            "    \"blocks_relayed\": {},\n",
            "    \"unknown_session_dropped\": {},\n",
            "    \"shed_frames\": {}\n",
            "  }},\n",
            "  \"aggregate_speedup\": {:.3},\n",
            "  \"note\": \"identical sessions and link-latency model in both arms; the speedup is latency overlap across sessions sharing one runtime, bounded by the worker pool and the machine's cores\"\n",
            "}}\n"
        ),
        scale.name,
        schedule_seed,
        scale.sessions,
        scale.providers,
        scale.records,
        scale.dim,
        scale.block_rows,
        scale.link_latency.as_millis(),
        total_rows,
        serial_s,
        scale.sessions as f64 / serial_s,
        total_rows as f64 / serial_s,
        serial_lat.p50,
        serial_lat.p99,
        concurrent_s,
        scale.sessions as f64 / concurrent_s,
        total_rows as f64 / concurrent_s,
        server.pool_capacity(),
        metrics.bytes_sealed,
        metrics.frames_routed,
        metrics.blocks_relayed,
        metrics.unknown_session_dropped,
        metrics.shed_frames,
        speedup,
    );
    std::fs::write(&out_path, json).expect("write BENCH_server.json");
    println!("  wrote {out_path}");

    // CI gate: a multi-session runtime that is *slower* than running the
    // same sessions serially is a regression.
    if speedup < 1.0 {
        eprintln!(
            "FAIL: concurrent aggregate throughput below the serial baseline ({speedup:.2}x)"
        );
        std::process::exit(1);
    }
}
