//! Figure 3: sample optimality rates `ρ̄ᵢ / b̂ᵢ` for Diabetes, Shuttle, and
//! Votes under Class and Uniform partitions, as the number of parties grows.
//!
//! Procedure (Section 4 of the brief): split each dataset into `k` randomly
//! sized sub-datasets, let every party run repeated local optimizations on
//! its own partition, estimate the bound `b̂ᵢ = max ρ^(i)` over the rounds,
//! and report the optimality rate. The figure plots one point per
//! `(dataset, partition scheme, k)` with `k ∈ 5..=10` and rates in
//! roughly `[0.8, 1.0]`.

use crate::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_datasets::normalize::min_max_normalize;
use sap_datasets::partition::{partition, PartitionScheme};
use sap_datasets::UciDataset;
use sap_linalg::vecops;
use sap_privacy::optimize::{estimate_bound, OptimizerConfig};

/// One point of the Figure 3 series.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Partition scheme label (`Uniform` / `Class`).
    pub scheme: &'static str,
    /// Number of parties `k`.
    pub parties: usize,
    /// Mean optimality rate across the `k` parties.
    pub optimality_rate: f64,
}

/// The paper's `k` range.
pub const PARTY_RANGE: std::ops::RangeInclusive<usize> = 5..=10;

/// Runs the Figure 3 experiment.
pub fn run(scale: Scale, seed: u64) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    let config = OptimizerConfig {
        candidates: scale.candidates(),
        eval_sample: 200,
        ..OptimizerConfig::default()
    };
    for dataset in UciDataset::FIGURE3 {
        let (data, _) = min_max_normalize(&dataset.generate(seed));
        for scheme in [PartitionScheme::ClassSkewed, PartitionScheme::Uniform] {
            for k in PARTY_RANGE {
                let parts = partition(&data, k, scheme, seed ^ (k as u64) << 8);
                let mut rng =
                    StdRng::seed_from_u64(seed ^ 0xF163 ^ (k as u64) ^ ((scheme as u64) << 32));
                let rates: Vec<f64> = parts
                    .iter()
                    .map(|p| {
                        let x = p.to_column_matrix();
                        estimate_bound(&x, &config, scale.rounds(), &mut rng)
                            .expect("valid optimizer config")
                            .optimality_rate()
                    })
                    .collect();
                rows.push(Fig3Row {
                    dataset: dataset.name(),
                    scheme: scheme.label(),
                    parties: k,
                    optimality_rate: vecops::mean(&rates),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed single-cell version of the experiment (full Quick run is
    /// exercised by the `figures` binary / benches).
    #[test]
    fn one_cell_produces_sane_rate() {
        let (data, _) = min_max_normalize(&UciDataset::Diabetes.generate(1));
        let parts = partition(&data, 5, PartitionScheme::Uniform, 2);
        let config = OptimizerConfig {
            candidates: 4,
            eval_sample: 100,
            use_ica: false,
            ..OptimizerConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let est = estimate_bound(&parts[0].to_column_matrix(), &config, 3, &mut rng)
            .expect("valid optimizer config");
        let rate = est.optimality_rate();
        assert!(
            (0.0..=1.0 + 1e-9).contains(&rate),
            "optimality rate {rate} out of range"
        );
        assert!(
            rate > 0.5,
            "mean/max of repeated optima should be high: {rate}"
        );
    }

    #[test]
    fn party_range_matches_paper() {
        assert_eq!(PARTY_RANGE, 5..=10);
    }
}
