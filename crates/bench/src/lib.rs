//! Experiment drivers regenerating the evaluation of the PODC'07 brief.
//!
//! Each `figN` module reproduces one figure of the paper as a pure library
//! function returning structured rows, so the same code backs:
//!
//! * the `figures` binary (`cargo run -p sap-bench --release --bin figures`),
//!   which prints paper-style series and is what EXPERIMENTS.md records, and
//! * the Criterion benches (`cargo bench`), which measure the computational
//!   kernels behind each figure.
//!
//! | Paper figure | Module | Claim being reproduced |
//! |---|---|---|
//! | Figure 2 | [`fig2`] | optimized perturbations dominate random ones |
//! | Figure 3 | [`fig3`] | optimality rates across parties & partitions |
//! | Figure 4 | [`fig4`] | lower bound on #parties vs satisfaction |
//! | Figure 5 | [`fig5_fig6`] | KNN accuracy deviation across 12 datasets |
//! | Figure 6 | [`fig5_fig6`] | SVM(RBF) accuracy deviation |

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5_fig6;
pub mod report;
pub mod stats;

/// Shared experiment scale knobs. `quick` keeps everything a few seconds per
/// figure (CI-friendly); `full` approximates the paper's round counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced rounds/candidates, for smoke runs and benches.
    Quick,
    /// Paper-like rounds (Figure 3's "100 rounds" etc.).
    Full,
}

impl Scale {
    /// Optimization rounds per bound estimate.
    pub fn rounds(self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Full => 30,
        }
    }

    /// Random/optimized draws for Figure 2's distributions.
    pub fn fig2_draws(self) -> usize {
        match self {
            Scale::Quick => 20,
            Scale::Full => 100,
        }
    }

    /// Optimizer candidates per run.
    pub fn candidates(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Full => 32,
        }
    }

    /// Session repeats per dataset/scheme cell in Figures 5–6.
    pub fn repeats(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Full => 3,
        }
    }
}
