//! Plain-text table/series rendering for the `figures` binary.

/// Renders a table with a title, header row, and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&rule);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a signed float with 2 decimal places (accuracy deviations).
pub fn f2s(x: f64) -> String {
    format!("{x:+.2}")
}

/// A crude text histogram: `bins` buckets over `[lo, hi]`, one line each.
pub fn render_histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> String {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let t = ((v - lo) / (hi - lo) * bins as f64).floor();
        let b = (t as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let left = lo + (hi - lo) * i as f64 / bins as f64;
        let bar = "#".repeat(c * 40 / max);
        out.push_str(&format!("{left:6.3} | {bar} {c}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let s = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(s.contains("T\n"));
        assert!(s.lines().count() >= 5);
        // All data lines have equal width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn histogram_counts_everything() {
        let vals = [0.1, 0.2, 0.25, 0.9];
        let h = render_histogram(&vals, 0.0, 1.0, 4);
        let total: usize = h
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2s(-1.5), "-1.50");
        assert_eq!(f2s(2.0), "+2.00");
    }
}
