//! Ablation experiments over the design choices DESIGN.md §8 calls out.
//!
//! Three sweeps, each a small table the `figures` binary can print:
//!
//! * **Noise level** — privacy guarantee vs KNN accuracy as σ grows: the
//!   utility/privacy trade-off the noise component controls.
//! * **Perturbation composition** — rotation-only [ICDM'05], rotation +
//!   translation, full geometric, and the additive-noise baseline
//!   [Agrawal–Srikant], all scored by the attack suite.
//! * **Known-point budget** — distance-inference attack strength as the
//!   adversary learns more plaintext records.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_classify::{KnnClassifier, Model};
use sap_datasets::normalize::min_max_normalize;
use sap_datasets::split::stratified_split;
use sap_datasets::{Dataset, UciDataset};
use sap_linalg::Matrix;
use sap_perturb::{AdditivePerturbation, GeometricPerturbation, Perturbation};
use sap_privacy::attack::distance_inference::DistanceInference;
use sap_privacy::attack::{Attack, AttackSuite, AttackerKnowledge};
use sap_privacy::metric::minimum_privacy_guarantee;

/// One row of the noise-level sweep.
#[derive(Debug, Clone)]
pub struct NoiseRow {
    /// Noise standard deviation σ.
    pub sigma: f64,
    /// Minimum privacy guarantee under the fast attack suite.
    pub privacy: f64,
    /// KNN accuracy on perturbed train/test.
    pub knn_accuracy: f64,
}

/// Sweeps the noise level on one dataset.
pub fn noise_sweep(dataset: UciDataset, sigmas: &[f64], seed: u64) -> Vec<NoiseRow> {
    let (data, _) = min_max_normalize(&dataset.generate(seed));
    let tt = stratified_split(&data, 0.7, seed ^ 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1A);
    let suite = AttackSuite::fast();

    sigmas
        .iter()
        .map(|&sigma| {
            let g = GeometricPerturbation::random(data.dim(), sigma, &mut rng);
            // Privacy on a training subsample.
            let x = tt.train.to_column_matrix();
            let sample = subsample(&x, 250);
            let knowledge = AttackerKnowledge::worst_case(&sample, 6);
            let (y, _) = g.perturb(&sample, &mut rng);
            let privacy = suite.privacy_guarantee(&sample, &y, &knowledge);
            // Accuracy with the same perturbation applied to train and test.
            let (ytr, _) = g.perturb(&tt.train.to_column_matrix(), &mut rng);
            let (yte, _) = g.perturb(&tt.test.to_column_matrix(), &mut rng);
            let ptrain =
                Dataset::from_column_matrix(&ytr, tt.train.labels().to_vec(), data.num_classes());
            let ptest =
                Dataset::from_column_matrix(&yte, tt.test.labels().to_vec(), data.num_classes());
            let knn_accuracy = KnnClassifier::fit(&ptrain, 5.min(ptrain.len())).accuracy(&ptest);
            NoiseRow {
                sigma,
                privacy,
                knn_accuracy,
            }
        })
        .collect()
}

/// One row of the composition ablation.
#[derive(Debug, Clone)]
pub struct CompositionRow {
    /// Variant label.
    pub variant: &'static str,
    /// Minimum privacy guarantee under the fast attack suite.
    pub privacy: f64,
}

/// Compares perturbation family members at a fixed noise budget.
pub fn composition_ablation(dataset: UciDataset, sigma: f64, seed: u64) -> Vec<CompositionRow> {
    let (data, _) = min_max_normalize(&dataset.generate(seed));
    let x = data.to_column_matrix();
    let sample = subsample(&x, 250);
    let knowledge = AttackerKnowledge::worst_case(&sample, 6);
    let suite = AttackSuite::fast();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1B);
    let d = data.dim();

    let mut rows = Vec::new();

    // Additive-noise baseline [Agrawal–Srikant].
    let (y, _) = AdditivePerturbation::new(sigma).perturb(&sample, &mut rng);
    rows.push(CompositionRow {
        variant: "additive-noise",
        privacy: suite.privacy_guarantee(&sample, &y, &knowledge),
    });

    // Rotation only [ICDM'05].
    let g = GeometricPerturbation::new(
        Perturbation::rotation_only(d, &mut rng),
        sap_perturb::noise::NoiseSpec::none(),
    );
    let (y, _) = g.perturb(&sample, &mut rng);
    rows.push(CompositionRow {
        variant: "rotation-only",
        privacy: suite.privacy_guarantee(&sample, &y, &knowledge),
    });

    // Rotation + translation, no noise.
    let g = GeometricPerturbation::new(
        Perturbation::random(d, &mut rng),
        sap_perturb::noise::NoiseSpec::none(),
    );
    let (y, _) = g.perturb(&sample, &mut rng);
    rows.push(CompositionRow {
        variant: "rotation+translation",
        privacy: suite.privacy_guarantee(&sample, &y, &knowledge),
    });

    // Full geometric.
    let g = GeometricPerturbation::random(d, sigma, &mut rng);
    let (y, _) = g.perturb(&sample, &mut rng);
    rows.push(CompositionRow {
        variant: "full-geometric",
        privacy: suite.privacy_guarantee(&sample, &y, &knowledge),
    });

    rows
}

/// One row of the known-point sweep.
#[derive(Debug, Clone)]
pub struct KnownPointRow {
    /// Number of known plaintext records granted to the adversary.
    pub known_points: usize,
    /// Privacy left by the distance-inference attack (`None`: inapplicable).
    pub privacy: Option<f64>,
}

/// Sweeps the distance-inference attack's known-point budget.
pub fn known_point_sweep(
    dataset: UciDataset,
    sigma: f64,
    budgets: &[usize],
    seed: u64,
) -> Vec<KnownPointRow> {
    let (data, _) = min_max_normalize(&dataset.generate(seed));
    let x = data.to_column_matrix();
    let sample = subsample(&x, 300);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1C);
    let g = GeometricPerturbation::random(data.dim(), sigma, &mut rng);
    let (y, _) = g.perturb(&sample, &mut rng);

    budgets
        .iter()
        .map(|&m| {
            let knowledge = AttackerKnowledge::worst_case(&sample, m);
            let privacy = DistanceInference
                .estimate(&y, &knowledge)
                .map(|est| minimum_privacy_guarantee(&sample, &est));
            KnownPointRow {
                known_points: m,
                privacy,
            }
        })
        .collect()
}

fn subsample(x: &Matrix, limit: usize) -> Matrix {
    if x.cols() <= limit {
        return x.clone();
    }
    let cols: Vec<Vec<f64>> = (0..limit).map(|c| x.column(c * x.cols() / limit)).collect();
    Matrix::from_columns(&cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_sweep_trades_privacy_for_accuracy() {
        let rows = noise_sweep(UciDataset::Iris, &[0.0, 0.4], 1);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].privacy > rows[0].privacy,
            "more noise, more privacy: {rows:?}"
        );
        assert!(
            rows[1].knn_accuracy <= rows[0].knn_accuracy + 0.02,
            "more noise should not improve accuracy: {rows:?}"
        );
    }

    #[test]
    fn geometric_beats_additive_baseline() {
        let rows = composition_ablation(UciDataset::Diabetes, 0.05, 2);
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().privacy;
        // The full geometric perturbation must dominate the additive-noise
        // baseline at the same sigma (the paper's motivating comparison).
        assert!(get("full-geometric") > get("additive-noise"), "{rows:?}");
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn more_known_points_weaken_privacy() {
        let rows = known_point_sweep(UciDataset::Diabetes, 0.05, &[0, 2, 16, 64], 3);
        assert_eq!(rows[0].privacy, None, "attack needs >= 2 points");
        let p2 = rows[1].privacy.unwrap();
        let p64 = rows[3].privacy.unwrap();
        assert!(
            p64 <= p2 + 0.05,
            "64 known points should be at least as strong as 2: {p2} vs {p64}"
        );
    }
}
