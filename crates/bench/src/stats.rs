//! Shared measurement helpers for the bench binaries: wall-clock timing,
//! nearest-rank percentiles, and sample summaries.
//!
//! Every bench bin used to hand-roll its own mean/percentile arithmetic;
//! this module is the one copy they share (`load_qos`,
//! `server_throughput`). Percentiles are **nearest-rank on the raw
//! samples** — exact, unlike the server's fixed-bucket
//! `LatencyHistogram`, which trades resolution for O(1) recording on the
//! hot path. Benches hold all samples anyway, so they report the exact
//! quantiles.

use std::time::Instant;

/// Nearest-rank percentile (`q` in `0.0 ..= 1.0`) of an **ascending
/// sorted** slice. Zero when empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Five-number-plus summary of a sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// Summarizes a sample set (any order; zeros when empty).
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary::default();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary {
        count: sorted.len(),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        min: sorted[0],
        max: sorted[sorted.len() - 1],
        p50: percentile(&sorted, 0.50),
        p90: percentile(&sorted, 0.90),
        p99: percentile(&sorted, 0.99),
        p999: percentile(&sorted, 0.999),
    }
}

/// Runs `f`, returning its result and the elapsed wall clock in seconds.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summarize_is_order_independent_and_monotone() {
        let mut samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        samples.reverse();
        let s = summarize(&samples);
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        // Nearest rank: ceil(0.999 * 1000) = 999 → the 999th sample.
        assert_eq!(s.p999, 999.0);
        assert!(s.p999 <= s.max);
    }

    #[test]
    fn time_measures_nonnegative_wall_clock() {
        let (value, secs) = time(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
