//! Figures 5 & 6: accuracy deviation of models trained on SAP-unified
//! perturbed data versus models trained on the original data, across the
//! twelve UCI datasets and the two partition distributions.
//!
//! Procedure per `(dataset, scheme)` cell:
//!
//! 1. normalize the dataset and hold out a stratified test split,
//! 2. train the classifier on the clean training data → baseline accuracy,
//! 3. partition the training data across `k` providers (random `k ∈ 4..=8`,
//!    matching the paper's "several randomly sized sub-datasets"), run a
//!    full SAP session, and train the same classifier on the miner's unified
//!    dataset,
//! 4. classify the test set *in the unified space* (test records are mapped
//!    by the target perturbation, exactly how a provider would submit
//!    classification requests), and
//! 5. report `100·(perturbed_accuracy − baseline_accuracy)` averaged over
//!    repeats — the paper's "accuracy deviation" (negative = loss).

use crate::Scale;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sap_classify::{KnnClassifier, Model, SvmClassifier, SvmConfig};
use sap_core::session::{run_session, SapConfig};
use sap_datasets::normalize::min_max_normalize;
use sap_datasets::partition::{partition, PartitionScheme};
use sap_datasets::split::stratified_split;
use sap_datasets::{Dataset, UciDataset};
use sap_linalg::vecops;
use sap_privacy::optimize::OptimizerConfig;

/// Which classifier the figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigClassifier {
    /// Figure 5: k-nearest neighbours (k = 5).
    Knn,
    /// Figure 6: SVM with RBF kernel.
    SvmRbf,
}

impl FigClassifier {
    /// Figure number in the paper.
    pub fn figure(self) -> u32 {
        match self {
            FigClassifier::Knn => 5,
            FigClassifier::SvmRbf => 6,
        }
    }

    /// Trains on `train` and returns accuracy on `test`.
    pub fn train_and_score(self, train: &Dataset, test: &Dataset) -> f64 {
        match self {
            FigClassifier::Knn => {
                let k = 5.min(train.len());
                KnnClassifier::fit(train, k).accuracy(test)
            }
            FigClassifier::SvmRbf => {
                SvmClassifier::fit(train, &SvmConfig::rbf_for_dim(train.dim())).accuracy(test)
            }
        }
    }
}

/// One cell of Figure 5/6.
#[derive(Debug, Clone)]
pub struct Fig56Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Partition scheme label.
    pub scheme: &'static str,
    /// Clean-data baseline accuracy.
    pub baseline_accuracy: f64,
    /// Mean accuracy on SAP-unified data.
    pub perturbed_accuracy: f64,
    /// `100·(perturbed − baseline)` — the paper's y-axis.
    pub deviation: f64,
}

/// Runs one `(dataset, scheme)` cell.
pub fn run_cell(
    dataset: UciDataset,
    scheme: PartitionScheme,
    classifier: FigClassifier,
    scale: Scale,
    seed: u64,
) -> Fig56Row {
    let (data, _) = min_max_normalize(&dataset.generate(seed));
    let tt = stratified_split(&data, 0.7, seed ^ 0x5011);
    let baseline_accuracy = classifier.train_and_score(&tt.train, &tt.test);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xF165 ^ (classifier.figure() as u64));
    let mut accs = Vec::with_capacity(scale.repeats());
    for rep in 0..scale.repeats() {
        let k = rng.random_range(4..=8usize);
        let locals = partition(&tt.train, k, scheme, seed ^ ((rep as u64) << 16));
        let config = SapConfig {
            optimizer: OptimizerConfig {
                candidates: scale.candidates().min(8),
                eval_sample: 150,
                ..OptimizerConfig::default()
            },
            seed: seed ^ rep as u64,
            ..SapConfig::default()
        };
        let outcome = run_session(locals, &config).expect("session must complete");
        // Classification requests are submitted in the unified space.
        let test_matrix = outcome.target.apply_clean(&tt.test.to_column_matrix());
        let test_unified = Dataset::from_column_matrix(
            &test_matrix,
            tt.test.labels().to_vec(),
            tt.test.num_classes(),
        );
        accs.push(classifier.train_and_score(&outcome.unified, &test_unified));
    }
    let perturbed_accuracy = vecops::mean(&accs);
    Fig56Row {
        dataset: dataset.name(),
        scheme: scheme.label(),
        baseline_accuracy,
        perturbed_accuracy,
        deviation: 100.0 * (perturbed_accuracy - baseline_accuracy),
    }
}

/// Runs the full figure: all twelve datasets × both partition schemes.
pub fn run(classifier: FigClassifier, scale: Scale, seed: u64) -> Vec<Fig56Row> {
    let mut rows = Vec::new();
    for dataset in UciDataset::ALL {
        for scheme in [PartitionScheme::Uniform, PartitionScheme::ClassSkewed] {
            rows.push(run_cell(dataset, scheme, classifier, scale, seed));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One KNN cell end-to-end: deviation within the paper's plotted band.
    #[test]
    fn iris_knn_cell_small_deviation() {
        let row = run_cell(
            UciDataset::Iris,
            PartitionScheme::Uniform,
            FigClassifier::Knn,
            Scale::Quick,
            1,
        );
        assert!(
            row.baseline_accuracy > 0.8,
            "baseline {}",
            row.baseline_accuracy
        );
        assert!(
            row.deviation.abs() < 15.0,
            "deviation {} out of plausible range",
            row.deviation
        );
    }

    #[test]
    fn figure_numbers() {
        assert_eq!(FigClassifier::Knn.figure(), 5);
        assert_eq!(FigClassifier::SvmRbf.figure(), 6);
    }
}
