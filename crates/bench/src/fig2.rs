//! Figure 2: optimized perturbations give a higher privacy guarantee
//! distribution than random ones.
//!
//! The brief's Figure 2 is a conceptual PDF sketch; the companion SDM'07
//! paper backs it with measurements. We reproduce it quantitatively: draw
//! `n` random perturbations and `n` optimizer runs on the same dataset and
//! compare the two ρ samples. The paper's claim holds when the optimized
//! distribution stochastically dominates the random one.

use crate::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_datasets::normalize::min_max_normalize;
use sap_datasets::UciDataset;
use sap_linalg::vecops;
use sap_privacy::optimize::{optimize, random_baseline, OptimizerConfig};

/// The two ρ samples of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Dataset name.
    pub dataset: &'static str,
    /// Privacy guarantees of random perturbations.
    pub random: Vec<f64>,
    /// Privacy guarantees of optimized perturbations (best of `candidates`).
    pub optimized: Vec<f64>,
}

impl Fig2Result {
    /// Mean of the random sample.
    pub fn random_mean(&self) -> f64 {
        vecops::mean(&self.random)
    }

    /// Mean of the optimized sample.
    pub fn optimized_mean(&self) -> f64 {
        vecops::mean(&self.optimized)
    }

    /// Fraction of (optimized, random) pairs where optimized wins —
    /// an empirical `P(ρ_opt > ρ_rand)`; the paper's claim needs ≫ 0.5.
    pub fn dominance(&self) -> f64 {
        let mut wins = 0usize;
        let mut total = 0usize;
        for &o in &self.optimized {
            for &r in &self.random {
                if o > r {
                    wins += 1;
                }
                total += 1;
            }
        }
        wins as f64 / total.max(1) as f64
    }
}

/// Runs the Figure 2 experiment on one dataset.
pub fn run(dataset: UciDataset, scale: Scale, seed: u64) -> Fig2Result {
    let (data, _) = min_max_normalize(&dataset.generate(seed));
    let x = data.to_column_matrix();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF162);
    let config = OptimizerConfig {
        candidates: scale.candidates(),
        ..OptimizerConfig::default()
    };
    let draws = scale.fig2_draws();
    let random: Vec<f64> = (0..draws)
        .map(|_| random_baseline(&x, &config, &mut rng).1)
        .collect();
    let optimized: Vec<f64> = (0..draws)
        .map(|_| {
            optimize(&x, &config, &mut rng)
                .expect("valid optimizer config")
                .privacy_guarantee
        })
        .collect();
    Fig2Result {
        dataset: dataset.name(),
        random,
        optimized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_dominates_random() {
        let r = run(UciDataset::Iris, Scale::Quick, 1);
        assert_eq!(r.random.len(), Scale::Quick.fig2_draws());
        assert_eq!(r.optimized.len(), Scale::Quick.fig2_draws());
        assert!(
            r.optimized_mean() >= r.random_mean(),
            "optimized mean {} < random mean {}",
            r.optimized_mean(),
            r.random_mean()
        );
        assert!(
            r.dominance() > 0.5,
            "dominance {} should exceed 0.5",
            r.dominance()
        );
    }

    #[test]
    fn deterministic() {
        let a = run(UciDataset::Iris, Scale::Quick, 2);
        let b = run(UciDataset::Iris, Scale::Quick, 2);
        assert_eq!(a.random, b.random);
        assert_eq!(a.optimized, b.optimized);
    }
}
