//! Figure 4: the lower bound on the number of parties as a function of the
//! expected satisfaction level `s0`, for the three optimality rates the
//! paper measured (Diabetes 0.95, Shuttle 0.89, Votes 0.98).
//!
//! This is an analytic curve over the risk model (`sap_privacy::risk`); the
//! reconstruction of the bound is documented in DESIGN.md §5.

use sap_privacy::risk::min_parties;

/// One curve of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Curve {
    /// Dataset the optimality rate came from.
    pub dataset: &'static str,
    /// Optimality rate `O`.
    pub opt_rate: f64,
    /// `(s0, k_min)` points; `k_min = None` means no finite k suffices.
    pub points: Vec<(f64, Option<usize>)>,
}

/// The paper's legend: dataset → measured optimality rate.
pub const OPT_RATES: [(&str, f64); 3] = [("Diabetes", 0.95), ("Shuttle", 0.89), ("Votes", 0.98)];

/// The paper's x-axis: `s0 ∈ {0.90, 0.91, …, 0.99}`.
pub fn s0_axis() -> Vec<f64> {
    (0..10).map(|i| 0.90 + 0.01 * i as f64).collect()
}

/// Computes all three curves.
pub fn run() -> Vec<Fig4Curve> {
    OPT_RATES
        .iter()
        .map(|&(dataset, opt_rate)| Fig4Curve {
            dataset,
            opt_rate,
            points: s0_axis()
                .into_iter()
                .map(|s0| (s0, min_parties(s0, opt_rate)))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_cover_axis() {
        let curves = run();
        assert_eq!(curves.len(), 3);
        for c in &curves {
            assert_eq!(c.points.len(), 10);
            assert!((c.points[0].0 - 0.90).abs() < 1e-12);
            assert!((c.points[9].0 - 0.99).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_increasing_in_s0() {
        for c in run() {
            let mut prev = 0usize;
            for &(_, k) in &c.points {
                let k = k.expect("finite for s0 <= 0.99, O <= 0.98");
                assert!(k >= prev, "k must grow with s0");
                prev = k;
            }
        }
    }

    #[test]
    fn votes_needs_most_parties() {
        // Higher opt rate -> more parties needed at the same s0.
        let curves = run();
        let by_name = |n: &str| {
            curves
                .iter()
                .find(|c| c.dataset == n)
                .unwrap()
                .points
                .last()
                .unwrap()
                .1
                .unwrap()
        };
        let votes = by_name("Votes");
        let diabetes = by_name("Diabetes");
        let shuttle = by_name("Shuttle");
        assert!(votes > diabetes && diabetes > shuttle);
        // Scale matches the paper's 0–40 axis.
        assert!(votes <= 40, "votes k_min {votes} within the paper's axis");
        assert!(shuttle >= 5);
    }
}
