//! Criterion bench behind Figure 2: the randomized perturbation optimizer
//! and its random baseline, on a normalized Diabetes-like dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_datasets::normalize::min_max_normalize;
use sap_datasets::UciDataset;
use sap_privacy::optimize::{optimize, random_baseline, OptimizerConfig};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let (data, _) = min_max_normalize(&UciDataset::Diabetes.generate(1));
    let x = data.to_column_matrix();
    let mut group = c.benchmark_group("fig2_optimizer");
    group.sample_size(10);

    let config = OptimizerConfig {
        candidates: 8,
        eval_sample: 150,
        ..OptimizerConfig::default()
    };
    group.bench_function("random_baseline", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(random_baseline(&x, &config, &mut rng).1));
    });
    for candidates in [4usize, 8, 16] {
        let cfg = OptimizerConfig {
            candidates,
            eval_sample: 150,
            ..OptimizerConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("optimize", candidates), &cfg, |b, cfg| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                black_box(
                    optimize(&x, cfg, &mut rng)
                        .expect("valid optimizer config")
                        .privacy_guarantee,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
