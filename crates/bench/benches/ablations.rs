//! Ablation benches for the design choices DESIGN.md §8 calls out:
//! noise level, perturbation components (rotation-only vs full geometric),
//! and attack-suite composition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_datasets::normalize::min_max_normalize;
use sap_datasets::UciDataset;
use sap_perturb::GeometricPerturbation;
use sap_privacy::attack::{AttackSuite, AttackerKnowledge};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let (data, _) = min_max_normalize(&UciDataset::Diabetes.generate(1));
    let x = data.to_column_matrix();
    let sample = x.submatrix(0..x.rows(), 0..200.min(x.cols()));
    let knowledge = AttackerKnowledge::worst_case(&sample, 6);
    let mut rng = StdRng::seed_from_u64(1);

    // Noise-level ablation: how evaluation cost scales with sigma (cost is
    // flat; the interesting output is the privacy number the harness prints).
    let mut group = c.benchmark_group("ablation_noise_level");
    group.sample_size(10);
    for sigma in [0.0, 0.05, 0.1, 0.2] {
        let g = GeometricPerturbation::random(x.rows(), sigma, &mut rng);
        let (y, _) = g.perturb(&sample, &mut rng);
        let suite = AttackSuite::fast();
        group.bench_with_input(
            BenchmarkId::new("attack_suite", format!("sigma{sigma}")),
            &y,
            |b, y| {
                b.iter(|| black_box(suite.privacy_guarantee(&sample, y, &knowledge)));
            },
        );
    }
    group.finish();

    // Attack-suite composition ablation: fast (3 attacks) vs standard (+ICA).
    let mut group = c.benchmark_group("ablation_attack_suite");
    group.sample_size(10);
    let g = GeometricPerturbation::random(x.rows(), 0.05, &mut rng);
    let (y, _) = g.perturb(&sample, &mut rng);
    for (name, suite) in [
        ("fast", AttackSuite::fast()),
        ("standard", AttackSuite::standard()),
    ] {
        group.bench_with_input(BenchmarkId::new("suite", name), &suite, |b, suite| {
            b.iter(|| black_box(suite.privacy_guarantee(&sample, &y, &knowledge)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
