//! Criterion bench behind Figure 6: SAP session plus SVM(RBF)/SMO training —
//! the heavier classifier of the accuracy-deviation pair.

use criterion::{criterion_group, criterion_main, Criterion};
use sap_bench::fig5_fig6::{run_cell, FigClassifier};
use sap_bench::Scale;
use sap_classify::{Model, SvmClassifier, SvmConfig};
use sap_datasets::partition::PartitionScheme;
use sap_datasets::split::stratified_split;
use sap_datasets::UciDataset;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_svm");
    group.sample_size(10);

    // The SMO kernel alone, without the protocol.
    let data = UciDataset::Iris.generate(1);
    let tt = stratified_split(&data, 0.7, 2);
    group.bench_function("smo_train_iris", |b| {
        b.iter(|| {
            let svm = SvmClassifier::fit(&tt.train, &SvmConfig::rbf_for_dim(tt.train.dim()));
            black_box(svm.accuracy(&tt.test))
        });
    });

    // Full Figure 6 cell: session + SVM.
    group.bench_function("iris_uniform_cell", |b| {
        b.iter(|| {
            black_box(run_cell(
                UciDataset::Iris,
                PartitionScheme::Uniform,
                FigClassifier::SvmRbf,
                Scale::Quick,
                1,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
