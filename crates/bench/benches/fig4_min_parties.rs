//! Criterion bench behind Figure 4: the analytic min-parties bound (cheap,
//! but benched so every figure has a regenerator with a measured kernel) and
//! the SAP risk evaluation it builds on.

use criterion::{criterion_group, criterion_main, Criterion};
use sap_privacy::risk::{min_parties, sap_risk};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_min_parties");

    group.bench_function("min_parties_full_axis", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..10 {
                let s0 = 0.90 + 0.01 * i as f64;
                for o in [0.89, 0.95, 0.98] {
                    acc += min_parties(black_box(s0), black_box(o)).unwrap_or(0);
                }
            }
            black_box(acc)
        });
    });

    group.bench_function("sap_risk_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 2..40usize {
                acc += sap_risk(black_box(1.0), black_box(0.9), black_box(0.95), k);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
