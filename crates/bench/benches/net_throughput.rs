//! Transport-layer benchmarks: the legacy monolithic pipeline (whole
//! message serde-encoded, sealed byte-at-a-time, shipped as one payload)
//! against the chunked streaming pipeline (row-block frames, word-wise
//! sealed envelope) — the cost floor of a SAP session's data exchange.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_core::link::{self, Inbound};
use sap_core::messages::{SapMessage, SlotTag};
use sap_datasets::Dataset;
use sap_linalg::randn_matrix;
use sap_net::crypto::{open, seal, ChannelKey};
use sap_net::node::Node;
use sap_net::transport::InMemoryHub;
use sap_net::{wire, PartyId};
use std::hint::black_box;
use std::time::Duration;

fn dataset(records: usize, dim: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    let m = randn_matrix(dim, records, &mut rng);
    let labels = (0..records).map(|i| i % 2).collect();
    Dataset::from_column_matrix(&m, labels, 2)
}

fn dataset_message(records: usize, dim: usize) -> SapMessage {
    SapMessage::PerturbedData {
        slot: SlotTag(7),
        data: dataset(records, dim),
    }
}

fn bench_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_throughput");
    for &records in &[100usize, 1000, 10_000] {
        let msg = dataset_message(records, 16);
        let data = dataset(records, 16);
        let bytes = wire::to_bytes(&msg).unwrap();
        group.throughput(Throughput::Bytes(bytes.len() as u64));

        group.bench_with_input(BenchmarkId::new("wire_encode", records), &msg, |b, msg| {
            b.iter(|| black_box(wire::to_bytes(msg).unwrap()));
        });
        group.bench_with_input(
            BenchmarkId::new("wire_decode", records),
            &bytes,
            |b, bytes| {
                b.iter(|| black_box(wire::from_bytes::<SapMessage>(bytes).unwrap()));
            },
        );

        let key = ChannelKey::derive(42, 1, 2);
        group.bench_with_input(
            BenchmarkId::new("legacy_seal_open", records),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let sealed = seal(key, 9, bytes);
                    black_box(open(key, &sealed).unwrap())
                });
            },
        );

        // The seed's full pipeline: encode whole message, seal whole
        // payload byte-at-a-time, one monolithic transport send.
        group.bench_with_input(
            BenchmarkId::new("monolithic_roundtrip", records),
            &msg,
            |b, msg| {
                let hub = InMemoryHub::new();
                let tx = hub.endpoint(PartyId(1));
                let rx = hub.endpoint(PartyId(2));
                use sap_net::Transport;
                b.iter(|| {
                    let plain = wire::to_bytes(msg).unwrap();
                    let sealed = seal(key, 9, &plain);
                    tx.send(PartyId(2), sealed).unwrap();
                    let (_, got) = rx.recv().unwrap();
                    let opened = open(key, &got).unwrap();
                    black_box(wire::from_bytes::<SapMessage>(&opened).unwrap())
                });
            },
        );

        // The refactored pipeline: row-block stream frames, each sealed
        // with the word-wise envelope, reassembled without a monolithic
        // buffer.
        group.bench_with_input(
            BenchmarkId::new("chunked_roundtrip", records),
            &data,
            |b, data| {
                let hub = InMemoryHub::new();
                let tx = Node::new(hub.endpoint(PartyId(1)), 42);
                let rx = Node::new(hub.endpoint(PartyId(2)), 42);
                b.iter(|| {
                    link::send_dataset(&tx, PartyId(2), false, SlotTag(7), data, 512).unwrap();
                    let (_, inbound) = link::recv_message(&rx, Duration::from_secs(5)).unwrap();
                    let Inbound::Data(stream) = inbound else {
                        panic!("expected stream");
                    };
                    black_box(stream.into_dataset().unwrap())
                });
            },
        );

        // The anonymizing relay hop alone: receive a stream and forward it
        // without decoding (clone Bytes, never Dataset).
        group.bench_with_input(BenchmarkId::new("relay_hop", records), &data, |b, data| {
            let hub = InMemoryHub::new();
            let tx = Node::new(hub.endpoint(PartyId(1)), 42);
            let relay = Node::new(hub.endpoint(PartyId(2)), 42);
            let miner = Node::new(hub.endpoint(PartyId(100)), 42);
            b.iter(|| {
                link::send_dataset(&tx, PartyId(2), false, SlotTag(7), data, 512).unwrap();
                let (_, inbound) = link::recv_message(&relay, Duration::from_secs(5)).unwrap();
                let Inbound::Data(stream) = inbound else {
                    panic!("expected stream");
                };
                link::relay_stream(&relay, PartyId(100), &stream).unwrap();
                let (_, relayed) = link::recv_message(&miner, Duration::from_secs(5)).unwrap();
                let Inbound::Data(relayed) = relayed else {
                    panic!("expected relayed stream");
                };
                black_box(relayed.into_dataset().unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
