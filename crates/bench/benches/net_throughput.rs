//! Transport-layer microbenchmarks: wire encoding, sealing, and hub
//! round-trips for dataset-sized payloads — the cost floor of a SAP session.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_core::messages::{SapMessage, SlotTag};
use sap_datasets::Dataset;
use sap_linalg::randn_matrix;
use sap_net::crypto::{open, seal, ChannelKey};
use sap_net::node::Node;
use sap_net::transport::InMemoryHub;
use sap_net::{wire, PartyId};
use std::hint::black_box;

fn dataset_message(records: usize, dim: usize) -> SapMessage {
    let mut rng = StdRng::seed_from_u64(1);
    let m = randn_matrix(dim, records, &mut rng);
    let labels = (0..records).map(|i| i % 2).collect();
    SapMessage::PerturbedData {
        slot: SlotTag(7),
        data: Dataset::from_column_matrix(&m, labels, 2),
    }
}

fn bench_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_throughput");
    for &records in &[100usize, 1000] {
        let msg = dataset_message(records, 16);
        let bytes = wire::to_bytes(&msg).unwrap();
        group.throughput(Throughput::Bytes(bytes.len() as u64));

        group.bench_with_input(BenchmarkId::new("wire_encode", records), &msg, |b, msg| {
            b.iter(|| black_box(wire::to_bytes(msg).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("wire_decode", records), &bytes, |b, bytes| {
            b.iter(|| black_box(wire::from_bytes::<SapMessage>(bytes).unwrap()));
        });

        let key = ChannelKey::derive(42, 1, 2);
        group.bench_with_input(BenchmarkId::new("seal_open", records), &bytes, |b, bytes| {
            b.iter(|| {
                let sealed = seal(key, 9, bytes);
                black_box(open(key, &sealed).unwrap())
            });
        });

        group.bench_with_input(
            BenchmarkId::new("node_roundtrip", records),
            &msg,
            |b, msg| {
                let hub = InMemoryHub::new();
                let a = Node::new(hub.endpoint(PartyId(1)), 42);
                let bn = Node::new(hub.endpoint(PartyId(2)), 42);
                b.iter(|| {
                    a.send_msg(PartyId(2), msg).unwrap();
                    let (_, got): (PartyId, SapMessage) = bn.recv_msg().unwrap();
                    black_box(got)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
