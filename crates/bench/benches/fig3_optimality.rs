//! Criterion bench behind Figure 3: per-party bound estimation (repeated
//! local optimization) as the party count varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_datasets::normalize::min_max_normalize;
use sap_datasets::partition::{partition, PartitionScheme};
use sap_datasets::UciDataset;
use sap_privacy::optimize::{estimate_bound, OptimizerConfig};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let (data, _) = min_max_normalize(&UciDataset::Votes.generate(1));
    let mut group = c.benchmark_group("fig3_optimality");
    group.sample_size(10);

    let config = OptimizerConfig {
        candidates: 6,
        eval_sample: 120,
        ..OptimizerConfig::default()
    };
    for k in [5usize, 10] {
        let parts = partition(&data, k, PartitionScheme::Uniform, 7);
        group.bench_with_input(
            BenchmarkId::new("bound_estimate_one_party", k),
            &parts,
            |b, parts| {
                let mut rng = StdRng::seed_from_u64(4);
                b.iter(|| {
                    let est = estimate_bound(&parts[0].to_column_matrix(), &config, 3, &mut rng)
                        .expect("valid optimizer config");
                    black_box(est.optimality_rate())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
