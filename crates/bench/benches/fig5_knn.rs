//! Criterion bench behind Figure 5: a full SAP session plus KNN train/score
//! on a small dataset — the end-to-end kernel of the accuracy-deviation
//! experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use sap_bench::fig5_fig6::{run_cell, FigClassifier};
use sap_bench::Scale;
use sap_datasets::partition::PartitionScheme;
use sap_datasets::UciDataset;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_knn");
    group.sample_size(10);

    group.bench_function("iris_uniform_cell", |b| {
        b.iter(|| {
            black_box(run_cell(
                UciDataset::Iris,
                PartitionScheme::Uniform,
                FigClassifier::Knn,
                Scale::Quick,
                1,
            ))
        });
    });
    group.bench_function("wine_class_cell", |b| {
        b.iter(|| {
            black_box(run_cell(
                UciDataset::Wine,
                PartitionScheme::ClassSkewed,
                FigClassifier::Knn,
                Scale::Quick,
                1,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
