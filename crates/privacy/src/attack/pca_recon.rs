//! PCA-based rotation reconstruction.
//!
//! A rotation preserves the covariance spectrum: if `Y = R·X + Ψ + Δ`, then
//! `Cov(Y) ≈ R·Cov(X)·Rᵀ` (noise inflates the diagonal slightly). An
//! adversary who knows the original covariance can eigendecompose both
//! matrices and align principal axes to estimate `R̂ = E_Y·D·E_Xᵀ`, where
//! `D = diag(±1)` encodes the per-axis sign ambiguity. Signs are resolved
//! greedily by matching the known per-attribute skewness (symmetric data
//! leaves signs ambiguous — a real weakness of the attack that the privacy
//! evaluation inherits faithfully).

use super::{Attack, AttackerKnowledge};
use sap_ica::center_columns;
use sap_linalg::eigen::SymmetricEigen;
use sap_linalg::{vecops, Matrix};

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcaReconstruction;

impl Attack for PcaReconstruction {
    fn name(&self) -> &'static str {
        "pca-reconstruction"
    }

    fn estimate(&self, perturbed: &Matrix, knowledge: &AttackerKnowledge) -> Option<Matrix> {
        let cov_x = knowledge.covariance.as_ref()?;
        if cov_x.rows() != perturbed.rows() || perturbed.cols() < 2 {
            return None;
        }
        let d = perturbed.rows();

        let (yc, _) = center_columns(perturbed);
        let cov_y = perturbed.column_covariance();
        let eig_y = SymmetricEigen::new(&cov_y).ok()?;
        let eig_x = SymmetricEigen::new(cov_x).ok()?;

        // Project perturbed data onto Y's principal axes; each projected
        // series estimates an original principal score series up to sign.
        let scores = eig_y.eigenvectors().transpose().matmul(&yc).ok()?;

        // Candidate reconstruction for a given sign assignment:
        // X̂c = E_X · D · scores, then add the known means back.
        let means: Vec<f64> = if knowledge.attr_stats.len() == d {
            knowledge.attr_stats.iter().map(|s| s.mean).collect()
        } else {
            vec![0.0; d]
        };
        let target_skew: Vec<f64> = if knowledge.attr_stats.len() == d {
            knowledge.attr_stats.iter().map(|s| s.skewness).collect()
        } else {
            vec![0.0; d]
        };

        // Greedy sign resolution, axis by axis: flip the axis if flipping
        // reduces the distance between reconstructed and known skewness.
        let mut signs = vec![1.0; d];
        let ex = eig_x.eigenvectors();
        let reconstruct = |signs: &[f64]| -> Matrix {
            let mut xhat = Matrix::zeros(d, perturbed.cols());
            for r in 0..d {
                for c in 0..perturbed.cols() {
                    let mut s = means[r];
                    for a in 0..d {
                        s += ex[(r, a)] * signs[a] * scores[(a, c)];
                    }
                    xhat[(r, c)] = s;
                }
            }
            xhat
        };
        let skew_err = |xhat: &Matrix| -> f64 {
            (0..d)
                .map(|r| {
                    let s = skewness(xhat.row(r));
                    (s - target_skew[r]).powi(2)
                })
                .sum()
        };
        let mut best = reconstruct(&signs);
        let mut best_err = skew_err(&best);
        for axis in 0..d {
            signs[axis] = -1.0;
            let cand = reconstruct(&signs);
            let err = skew_err(&cand);
            if err + 1e-15 < best_err {
                best_err = err;
                best = cand;
            } else {
                signs[axis] = 1.0;
            }
        }
        Some(best)
    }
}

fn skewness(xs: &[f64]) -> f64 {
    let m = vecops::mean(xs);
    let s = vecops::std_dev(xs);
    if s <= 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f64;
    xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n / s.powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::minimum_privacy_guarantee;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sap_perturb::GeometricPerturbation;

    /// Skewed data with an anisotropic spectrum: the PCA attack should
    /// substantially reconstruct rotation-only perturbation.
    #[test]
    fn breaks_rotation_of_skewed_anisotropic_data() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 3000;
        // Attribute 0: exponential-ish (skewed), large variance.
        // Attribute 1: squared-uniform (skewed), small variance.
        let x = Matrix::from_fn(2, n, |r, _| {
            let u: f64 = rng.random_range(0.0001..1.0);
            match r {
                0 => -u.ln() * 3.0,
                _ => u * u,
            }
        });
        let g = GeometricPerturbation::random(2, 0.0, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);

        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        let est = PcaReconstruction.estimate(&y, &knowledge).unwrap();
        let rho = minimum_privacy_guarantee(&x, &est);
        assert!(rho < 0.2, "PCA attack should break this, rho {rho}");
    }

    #[test]
    fn requires_covariance_knowledge() {
        let mut rng = StdRng::seed_from_u64(11);
        let y = sap_linalg::randn_matrix(2, 50, &mut rng);
        assert!(PcaReconstruction
            .estimate(&y, &AttackerKnowledge::default())
            .is_none());
    }

    #[test]
    fn isotropic_data_resists() {
        // With an isotropic spectrum the eigenbasis is arbitrary, so the
        // attack cannot align axes: privacy stays high.
        let mut rng = StdRng::seed_from_u64(12);
        let x = sap_linalg::randn_matrix(4, 2000, &mut rng);
        let g = GeometricPerturbation::random(4, 0.0, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        let est = PcaReconstruction.estimate(&y, &knowledge).unwrap();
        let rho = minimum_privacy_guarantee(&x, &est);
        assert!(rho > 0.4, "isotropic Gaussian should resist PCA, rho {rho}");
    }

    #[test]
    fn dimension_mismatch_returns_none() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = sap_linalg::randn_matrix(3, 100, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        let y = sap_linalg::randn_matrix(2, 100, &mut rng);
        assert!(PcaReconstruction.estimate(&y, &knowledge).is_none());
    }
}
