//! ICA-based reconstruction.
//!
//! A rotation is a linear mixing of attributes; when original attributes are
//! non-Gaussian and roughly independent, FastICA applied to the perturbed
//! data recovers them up to permutation, sign, and scale. The adversary then
//! assigns recovered components to original attributes by matching known
//! kurtosis, fixes signs by skewness, and rescales to the known marginal
//! mean/std.
//!
//! The attack degrades gracefully exactly where ICA theory says it must:
//! near-Gaussian attributes, correlated attributes, and added noise all
//! reduce reconstruction quality — which is why the optimizer can find
//! rotations with high guarantees at all.

use super::{Attack, AttackerKnowledge};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sap_ica::excess_kurtosis;
use sap_ica::fastica::{FastIca, FastIcaConfig};
use sap_linalg::{vecops, Matrix};

/// See the module docs.
#[derive(Debug, Clone)]
pub struct IcaReconstruction {
    /// FastICA settings.
    pub config: FastIcaConfig,
    /// Seed for FastICA's random initialization (the attack is randomized;
    /// privacy evaluation wants determinism).
    pub seed: u64,
}

impl Default for IcaReconstruction {
    fn default() -> Self {
        IcaReconstruction {
            config: FastIcaConfig {
                max_iter: 100,
                ..FastIcaConfig::default()
            },
            seed: 0x1CA,
        }
    }
}

impl IcaReconstruction {
    /// `true` when the attack's preconditions hold: known marginals for
    /// every attribute and enough records for ICA to be meaningful.
    fn applies(perturbed: &Matrix, knowledge: &AttackerKnowledge) -> bool {
        knowledge.attr_stats.len() == perturbed.rows() && perturbed.cols() >= 8
    }

    /// The attack with a caller-supplied whitener — the staged optimizer
    /// engine's entry point, where one
    /// [`sap_ica::workspace::WhiteningWorkspace`] decomposition is shared
    /// across every candidate rotation and each candidate's whitener is
    /// minted analytically. Numerically this grants the adversary *exact*
    /// whitening (a from-scratch fit estimates it from the release), so
    /// guarantees measured this way are conservative.
    pub fn estimate_with_whitener(
        &self,
        perturbed: &Matrix,
        knowledge: &AttackerKnowledge,
        whitener: sap_ica::Whitener,
    ) -> Option<Matrix> {
        if !Self::applies(perturbed, knowledge) {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ica = FastIca::fit_with_whitener(whitener, perturbed, &self.config, &mut rng).ok()?;
        let sources = ica.sources(perturbed).ok()?;
        Some(match_components(&sources, knowledge, perturbed.cols()))
    }
}

impl Attack for IcaReconstruction {
    fn name(&self) -> &'static str {
        "ica-reconstruction"
    }

    fn estimate(&self, perturbed: &Matrix, knowledge: &AttackerKnowledge) -> Option<Matrix> {
        if !Self::applies(perturbed, knowledge) {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ica = FastIca::fit(perturbed, &self.config, &mut rng).ok()?;
        let sources = ica.sources(perturbed).ok()?;
        Some(match_components(&sources, knowledge, perturbed.cols()))
    }
}

/// Assigns recovered components to attributes by kurtosis proximity,
/// fixes signs by skewness agreement, and rescales each component to the
/// known marginal — the deterministic tail shared by both whitening
/// paths of the attack.
fn match_components(sources: &Matrix, knowledge: &AttackerKnowledge, n_cols: usize) -> Matrix {
    let d = knowledge.attr_stats.len();
    let k = sources.rows();

    // Component statistics.
    let comp_kurt: Vec<f64> = (0..k).map(|r| excess_kurtosis(sources.row(r))).collect();
    let comp_skew: Vec<f64> = (0..k).map(|r| skewness(sources.row(r))).collect();

    // Greedy assignment: attributes with the most distinctive
    // (largest-|kurtosis|) priors pick first.
    let mut attr_order: Vec<usize> = (0..d).collect();
    attr_order.sort_by(|&a, &b| {
        knowledge.attr_stats[b]
            .kurtosis
            .abs()
            .total_cmp(&knowledge.attr_stats[a].kurtosis.abs())
    });

    let mut used = vec![false; k];
    let mut est = Matrix::zeros(d, n_cols);
    for &j in &attr_order {
        let prior = &knowledge.attr_stats[j];
        // Best unused component by kurtosis proximity.
        let pick = (0..k).filter(|&c| !used[c]).min_by(|&a, &b| {
            let da = (comp_kurt[a] - prior.kurtosis).abs();
            let db = (comp_kurt[b] - prior.kurtosis).abs();
            da.total_cmp(&db)
        });
        let Some(c) = pick else {
            // Fewer components than attributes (rank-deficient data):
            // fall back to the prior mean for the unmatched attribute.
            for col in 0..n_cols {
                est[(j, col)] = prior.mean;
            }
            continue;
        };
        used[c] = true;
        // Sign by skewness agreement; sources are unit-variance and
        // zero-mean, so rescale to the known marginal.
        let sign = if prior.skewness * comp_skew[c] < 0.0 {
            -1.0
        } else {
            1.0
        };
        for col in 0..n_cols {
            est[(j, col)] = sign * sources[(c, col)] * prior.std + prior.mean;
        }
    }
    est
}

fn skewness(xs: &[f64]) -> f64 {
    let m = vecops::mean(xs);
    let s = vecops::std_dev(xs);
    if s <= 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f64;
    xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n / s.powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::minimum_privacy_guarantee;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sap_perturb::GeometricPerturbation;

    /// Independent non-Gaussian attributes with distinct kurtosis priors:
    /// the canonical case ICA breaks.
    #[test]
    fn breaks_rotation_of_independent_non_gaussian_attrs() {
        let mut rng = StdRng::seed_from_u64(20);
        let n = 4000;
        let x = Matrix::from_fn(2, n, |r, _| match r {
            // Uniform: kurtosis -1.2.
            0 => rng.random_range(0.0..1.0),
            // Spiky two-sided exponential-ish: positive kurtosis.
            _ => {
                let u: f64 = rng.random_range(0.0001..1.0);
                let sign = if rng.random_range(0.0..1.0) < 0.5 {
                    -1.0
                } else {
                    1.0
                };
                sign * (-u.ln()) * 0.1 + 0.5
            }
        });
        let g = GeometricPerturbation::random(2, 0.0, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);

        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        let attack = IcaReconstruction::default();
        let est = attack.estimate(&y, &knowledge).unwrap();
        let rho = minimum_privacy_guarantee(&x, &est);
        assert!(rho < 0.45, "ICA should substantially break this, rho {rho}");
    }

    #[test]
    fn needs_marginal_knowledge() {
        let mut rng = StdRng::seed_from_u64(21);
        let y = sap_linalg::randn_matrix(2, 100, &mut rng);
        assert!(IcaReconstruction::default()
            .estimate(&y, &AttackerKnowledge::default())
            .is_none());
    }

    #[test]
    fn tiny_sample_returns_none() {
        let mut rng = StdRng::seed_from_u64(22);
        let x = sap_linalg::randn_matrix(2, 4, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        assert!(IcaReconstruction::default()
            .estimate(&x, &knowledge)
            .is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(23);
        let x = Matrix::from_fn(2, 500, |_, _| rng.random_range(0.0..1.0));
        let g = GeometricPerturbation::random(2, 0.0, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        let attack = IcaReconstruction::default();
        let a = attack.estimate(&y, &knowledge);
        let b = attack.estimate(&y, &knowledge);
        match (a, b) {
            (Some(a), Some(b)) => assert!(a.approx_eq(&b, 1e-12)),
            (None, None) => {}
            _ => panic!("non-deterministic applicability"),
        }
    }
}
