//! Attack models used to *evaluate* perturbation privacy.
//!
//! The privacy guarantee of a candidate perturbation is defined
//! adversarially: run every attack the threat model admits, let each produce
//! its best estimate `X̂` of the original data, and score the perturbation by
//! the worst case ([`crate::metric::minimum_privacy_guarantee`]). The SDM'07
//! companion paper's threat model includes:
//!
//! * **Naive value estimation** ([`naive::NaiveEstimation`]) — treat the
//!   perturbed values themselves as the estimate, rescaled to known
//!   per-attribute statistics.
//! * **PCA-based reconstruction** ([`pca_recon::PcaReconstruction`]) — use
//!   the spectrum-preserving property of rotations plus known covariance
//!   structure to estimate the rotation.
//! * **ICA-based reconstruction** ([`ica_recon::IcaReconstruction`]) — run
//!   FastICA to undo the mixing and match components to known attribute
//!   statistics.
//! * **Distance-inference / known-point attack**
//!   ([`distance_inference::DistanceInference`]) — with a few known
//!   (original, perturbed) record pairs, solve orthogonal Procrustes for the
//!   rotation and invert it.
//! * **Known-sample attack** ([`known_sample::KnownSampleAttack`]) — the
//!   weaker-knowledge variant: the adversary holds an independent sample of
//!   the population and runs the PCA reconstruction against *estimated*
//!   statistics.

pub mod distance_inference;
pub mod ica_recon;
pub mod known_sample;
pub mod naive;
pub mod pca_recon;

pub use distance_inference::DistanceInference;
pub use ica_recon::IcaReconstruction;
pub use known_sample::KnownSampleAttack;
pub use naive::NaiveEstimation;
pub use pca_recon::PcaReconstruction;

use crate::metric::minimum_privacy_guarantee;
use sap_linalg::{vecops, Matrix};

/// Per-attribute statistics the adversary is assumed to know (marginal
/// domain knowledge — e.g. published census statistics for age columns).
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// Attribute mean.
    pub mean: f64,
    /// Attribute standard deviation.
    pub std: f64,
    /// Attribute skewness (third standardized moment).
    pub skewness: f64,
    /// Attribute excess kurtosis.
    pub kurtosis: f64,
}

impl AttrStats {
    /// Computes the statistics of one sample.
    pub fn from_sample(xs: &[f64]) -> Self {
        let mean = vecops::mean(xs);
        let std = vecops::std_dev(xs);
        let n = xs.len() as f64;
        let (skewness, kurtosis) = if std > 1e-12 && xs.len() >= 4 {
            let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
            let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
            (m3 / std.powi(3), m4 / std.powi(4) - 3.0)
        } else {
            (0.0, 0.0)
        };
        AttrStats {
            mean,
            std,
            skewness,
            kurtosis,
        }
    }
}

/// Everything the semi-honest adversary knows when attacking a perturbed
/// dataset.
#[derive(Debug, Clone, Default)]
pub struct AttackerKnowledge {
    /// Marginal statistics of each original attribute (length `d`), if
    /// known.
    pub attr_stats: Vec<AttrStats>,
    /// Original `d × d` covariance matrix, if known.
    pub covariance: Option<Matrix>,
    /// Known plaintext records: `(column index in the perturbed matrix,
    /// original record)` pairs. Models insider leakage / public records.
    pub known_points: Vec<(usize, Vec<f64>)>,
}

impl AttackerKnowledge {
    /// Builds the *worst-case* knowledge directly from the original data:
    /// exact marginals, exact covariance, plus `num_known` known points
    /// (the first columns). This is the standard conservative assumption for
    /// privacy evaluation — real adversaries know less.
    pub fn worst_case(original: &Matrix, num_known: usize) -> Self {
        let attr_stats = (0..original.rows())
            .map(|j| AttrStats::from_sample(original.row(j)))
            .collect();
        let covariance = if original.cols() >= 2 {
            Some(original.column_covariance())
        } else {
            None
        };
        let known_points = (0..num_known.min(original.cols()))
            .map(|c| (c, original.column(c)))
            .collect();
        AttackerKnowledge {
            attr_stats,
            covariance,
            known_points,
        }
    }
}

/// A reconstruction attack on geometrically perturbed data.
pub trait Attack {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;

    /// Produces the attack's best estimate `X̂` of the original `d × N`
    /// data, or `None` when the attack does not apply (e.g. no known points,
    /// ICA divergence).
    fn estimate(&self, perturbed: &Matrix, knowledge: &AttackerKnowledge) -> Option<Matrix>;
}

/// Outcome of evaluating one attack.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Attack identifier.
    pub attack: &'static str,
    /// Minimum privacy guarantee this attack leaves (lower = stronger
    /// attack), or `None` when the attack did not apply.
    pub privacy: Option<f64>,
}

/// A bundle of attacks evaluated together; the privacy guarantee is the
/// minimum across applicable attacks.
pub struct AttackSuite {
    attacks: Vec<Box<dyn Attack + Send + Sync>>,
}

impl Default for AttackSuite {
    fn default() -> Self {
        Self::standard()
    }
}

impl AttackSuite {
    /// The paper's standard suite: naive + PCA + ICA + distance inference.
    pub fn standard() -> Self {
        AttackSuite {
            attacks: vec![
                Box::new(NaiveEstimation),
                Box::new(PcaReconstruction),
                Box::new(IcaReconstruction::default()),
                Box::new(DistanceInference),
            ],
        }
    }

    /// A cheaper suite without ICA, for inner optimizer loops and tests.
    pub fn fast() -> Self {
        AttackSuite {
            attacks: vec![
                Box::new(NaiveEstimation),
                Box::new(PcaReconstruction),
                Box::new(DistanceInference),
            ],
        }
    }

    /// An empty suite; add attacks with [`AttackSuite::push`].
    pub fn empty() -> Self {
        AttackSuite {
            attacks: Vec::new(),
        }
    }

    /// Adds an attack to the suite.
    pub fn push(&mut self, attack: Box<dyn Attack + Send + Sync>) {
        self.attacks.push(attack);
    }

    /// Number of attacks in the suite.
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// `true` when the suite holds no attacks.
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// Runs every attack and reports per-attack privacy.
    pub fn run(
        &self,
        original: &Matrix,
        perturbed: &Matrix,
        knowledge: &AttackerKnowledge,
    ) -> Vec<AttackOutcome> {
        self.attacks
            .iter()
            .map(|a| AttackOutcome {
                attack: a.name(),
                privacy: a
                    .estimate(perturbed, knowledge)
                    .map(|est| minimum_privacy_guarantee(original, &est)),
            })
            .collect()
    }

    /// The minimum privacy guarantee across applicable attacks — the
    /// scalar `ρ` the paper's optimizer maximizes. Returns `f64::INFINITY`
    /// when no attack applies.
    pub fn privacy_guarantee(
        &self,
        original: &Matrix,
        perturbed: &Matrix,
        knowledge: &AttackerKnowledge,
    ) -> f64 {
        self.run(original, perturbed, knowledge)
            .into_iter()
            .filter_map(|o| o.privacy)
            .fold(f64::INFINITY, f64::min)
    }
}

impl std::fmt::Debug for AttackSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.attacks.iter().map(|a| a.name()).collect();
        f.debug_struct("AttackSuite")
            .field("attacks", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::randn_matrix;
    use sap_perturb::GeometricPerturbation;

    #[test]
    fn attr_stats_of_standard_normal() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = sap_linalg::randn_vec(100_000, &mut rng);
        let s = AttrStats::from_sample(&xs);
        assert!(s.mean.abs() < 0.02);
        assert!((s.std - 1.0).abs() < 0.02);
        assert!(s.skewness.abs() < 0.05);
        assert!(s.kurtosis.abs() < 0.1);
    }

    #[test]
    fn worst_case_knowledge_is_complete() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = randn_matrix(3, 40, &mut rng);
        let k = AttackerKnowledge::worst_case(&x, 5);
        assert_eq!(k.attr_stats.len(), 3);
        assert!(k.covariance.is_some());
        assert_eq!(k.known_points.len(), 5);
        assert_eq!(k.known_points[2].1, x.column(2));
    }

    #[test]
    fn suite_reports_every_attack() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = randn_matrix(3, 120, &mut rng);
        let g = GeometricPerturbation::random(3, 0.05, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 8);
        let suite = AttackSuite::fast();
        let outcomes = suite.run(&x, &y, &knowledge);
        assert_eq!(outcomes.len(), 3);
        let rho = suite.privacy_guarantee(&x, &y, &knowledge);
        assert!(rho.is_finite());
        assert!(rho >= 0.0);
    }

    #[test]
    fn empty_suite_gives_infinite_privacy() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = randn_matrix(2, 10, &mut rng);
        let suite = AttackSuite::empty();
        assert!(suite.is_empty());
        assert_eq!(
            suite.privacy_guarantee(&x, &x, &AttackerKnowledge::default()),
            f64::INFINITY
        );
    }

    #[test]
    fn identity_perturbation_is_fully_broken() {
        // "Perturbing" with the identity leaks everything: naive attack
        // reconstructs perfectly, so ρ ≈ 0.
        let mut rng = StdRng::seed_from_u64(5);
        let x = randn_matrix(3, 200, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        let suite = AttackSuite::fast();
        let rho = suite.privacy_guarantee(&x, &x, &knowledge);
        assert!(rho < 0.05, "identity perturbation rho {rho}");
    }
}
