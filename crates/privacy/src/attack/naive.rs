//! Naive value estimation.
//!
//! The weakest attack in the SDM'07 threat model: the adversary takes the
//! perturbed values themselves as the estimate of the original, after
//! rescaling each perturbed attribute to the known marginal statistics of
//! the corresponding original attribute. This attack is what rules out
//! trivial perturbations (e.g. translation-only), and it is the strongest
//! applicable attack when the adversary has no structural knowledge.

use super::{Attack, AttackerKnowledge};
use sap_linalg::{vecops, Matrix};

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveEstimation;

impl Attack for NaiveEstimation {
    fn name(&self) -> &'static str {
        "naive-estimation"
    }

    fn estimate(&self, perturbed: &Matrix, knowledge: &AttackerKnowledge) -> Option<Matrix> {
        if knowledge.attr_stats.len() != perturbed.rows() {
            // Without marginal knowledge the naive estimate is the perturbed
            // data as-is.
            return Some(perturbed.clone());
        }
        let mut est = perturbed.clone();
        for j in 0..perturbed.rows() {
            let row = perturbed.row(j);
            let mean = vecops::mean(row);
            let std = vecops::std_dev(row);
            let target = &knowledge.attr_stats[j];
            let scale = if std > 1e-12 { target.std / std } else { 0.0 };
            let out = est.row_mut(j);
            for v in out.iter_mut() {
                *v = (*v - mean) * scale + target.mean;
            }
        }
        Some(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::randn_matrix;

    #[test]
    fn without_knowledge_returns_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let y = randn_matrix(2, 10, &mut rng);
        let est = NaiveEstimation
            .estimate(&y, &AttackerKnowledge::default())
            .unwrap();
        assert_eq!(est, y);
    }

    #[test]
    fn rescales_to_known_marginals() {
        let mut rng = StdRng::seed_from_u64(2);
        // Original attribute: mean 10, std 2 (attacker knows this).
        let x = randn_matrix(1, 5000, &mut rng).map(|v| 10.0 + 2.0 * v);
        // Perturbed: arbitrary affine distortion of the same attribute.
        let y = x.map(|v| -3.0 * v + 7.0);
        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        let est = NaiveEstimation.estimate(&y, &knowledge).unwrap();
        let m = sap_linalg::vecops::mean(est.row(0));
        let s = sap_linalg::vecops::std_dev(est.row(0));
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
        assert!((s - 2.0).abs() < 0.1, "std {s}");
    }

    /// Against translation-only "perturbation" the naive attack recovers the
    /// data (up to sign ambiguity which rescaling cannot flip but the
    /// identity case avoids).
    #[test]
    fn breaks_translation_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = randn_matrix(2, 2000, &mut rng);
        let y = x.map(|v| v + 0.9);
        let knowledge = AttackerKnowledge::worst_case(&x, 0);
        let est = NaiveEstimation.estimate(&y, &knowledge).unwrap();
        let rho = crate::metric::minimum_privacy_guarantee(&x, &est);
        assert!(rho < 0.05, "translation-only should be broken, rho {rho}");
    }
}
