//! Known-sample attack.
//!
//! A more realistic variant of the PCA reconstruction: instead of the exact
//! original covariance (which [`super::PcaReconstruction`] assumes), the
//! adversary only holds an independent *sample from the same population* —
//! e.g. a public subset of an earlier release — and estimates the marginals
//! and covariance from it. Attack strength degrades smoothly with sample
//! size, which is exactly the knob the SDM'07 analysis varies.

use super::{Attack, AttackerKnowledge, AttrStats, PcaReconstruction};
use sap_linalg::Matrix;

/// See the module docs.
#[derive(Debug, Clone)]
pub struct KnownSampleAttack {
    /// The adversary's reference sample (`d × m`, same population as the
    /// target data, disjoint records).
    pub reference: Matrix,
}

impl KnownSampleAttack {
    /// Creates the attack from a reference sample.
    ///
    /// # Panics
    ///
    /// Panics when the sample has fewer than 4 records (covariance
    /// estimation would be meaningless).
    pub fn new(reference: Matrix) -> Self {
        assert!(
            reference.cols() >= 4,
            "reference sample needs at least 4 records"
        );
        KnownSampleAttack { reference }
    }

    /// Derives the attacker knowledge implied by the reference sample:
    /// estimated marginals and covariance, no known points.
    pub fn derived_knowledge(&self) -> AttackerKnowledge {
        AttackerKnowledge {
            attr_stats: (0..self.reference.rows())
                .map(|j| AttrStats::from_sample(self.reference.row(j)))
                .collect(),
            covariance: Some(self.reference.column_covariance()),
            known_points: Vec::new(),
        }
    }
}

impl Attack for KnownSampleAttack {
    fn name(&self) -> &'static str {
        "known-sample"
    }

    fn estimate(&self, perturbed: &Matrix, _knowledge: &AttackerKnowledge) -> Option<Matrix> {
        if self.reference.rows() != perturbed.rows() {
            return None;
        }
        // Run the PCA reconstruction against the *estimated* knowledge; the
        // exact knowledge passed in is deliberately ignored — this attack
        // models the weaker adversary.
        PcaReconstruction.estimate(perturbed, &self.derived_knowledge())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::minimum_privacy_guarantee;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sap_perturb::GeometricPerturbation;

    /// Skewed anisotropic population split into target + reference halves.
    fn population(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(2, n, |r, _| {
            let u: f64 = rng.random_range(0.0001..1.0);
            match r {
                0 => -u.ln() * 3.0,
                _ => u * u,
            }
        })
    }

    #[test]
    fn large_reference_approaches_exact_pca_attack() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = population(2000, 2);
        let reference = population(2000, 3); // independent, same population
        let g = GeometricPerturbation::random(2, 0.0, &mut rng);
        let (y, _) = g.perturb(&target, &mut rng);

        let exact = PcaReconstruction
            .estimate(&y, &AttackerKnowledge::worst_case(&target, 0))
            .unwrap();
        let rho_exact = minimum_privacy_guarantee(&target, &exact);

        let attack = KnownSampleAttack::new(reference);
        let est = attack.estimate(&y, &AttackerKnowledge::default()).unwrap();
        let rho_sample = minimum_privacy_guarantee(&target, &est);

        assert!(
            (rho_sample - rho_exact).abs() < 0.25,
            "large reference should approach exact attack: sample {rho_sample:.3} vs exact {rho_exact:.3}"
        );
    }

    #[test]
    fn tiny_reference_is_weaker() {
        let mut rng = StdRng::seed_from_u64(4);
        let target = population(2000, 5);
        let g = GeometricPerturbation::random(2, 0.0, &mut rng);
        let (y, _) = g.perturb(&target, &mut rng);

        let rho_with = |m: usize, seed: u64| {
            let reference = population(m, seed);
            let attack = KnownSampleAttack::new(reference);
            attack
                .estimate(&y, &AttackerKnowledge::default())
                .map(|est| minimum_privacy_guarantee(&target, &est))
                .unwrap()
        };
        // Average a few seeds to smooth estimation noise.
        let small: f64 = (0..4).map(|s| rho_with(8, 10 + s)).sum::<f64>() / 4.0;
        let large: f64 = (0..4).map(|s| rho_with(1500, 20 + s)).sum::<f64>() / 4.0;
        assert!(
            large <= small + 0.05,
            "a larger reference should not be weaker: small-ref rho {small:.3}, large-ref rho {large:.3}"
        );
    }

    #[test]
    fn dimension_mismatch_inapplicable() {
        let reference = population(100, 6);
        let attack = KnownSampleAttack::new(reference);
        let y = Matrix::zeros(3, 50);
        assert!(attack.estimate(&y, &AttackerKnowledge::default()).is_none());
    }

    #[test]
    #[should_panic(expected = "at least 4 records")]
    fn tiny_sample_rejected() {
        let _ = KnownSampleAttack::new(Matrix::zeros(2, 2));
    }
}
