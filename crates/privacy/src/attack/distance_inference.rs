//! Distance-inference (known-point) attack.
//!
//! Rotations preserve distances, so an adversary who knows a handful of
//! original records *and* can locate their images in the perturbed dataset
//! can solve the orthogonal Procrustes problem for the rotation and
//! translation, then invert the whole release:
//!
//! ```text
//! R̂ = Procrustes(X_known − μ_X, Y_known − μ_Y)
//! t̂ = μ_Y − R̂·μ_X
//! X̂ = R̂ᵀ·(Y − t̂)
//! ```
//!
//! This is the attack that motivates the *noise component* `Δ` of geometric
//! perturbation: with noise, the Procrustes fit and the inversion are both
//! inexact, leaving a privacy floor proportional to the noise level. We
//! grant the adversary exact correspondence between known originals and
//! their perturbed images — the conservative worst case.

use super::{Attack, AttackerKnowledge};
use sap_linalg::svd::procrustes_rotation;
use sap_linalg::Matrix;

/// See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistanceInference;

impl Attack for DistanceInference {
    fn name(&self) -> &'static str {
        "distance-inference"
    }

    fn estimate(&self, perturbed: &Matrix, knowledge: &AttackerKnowledge) -> Option<Matrix> {
        let d = perturbed.rows();
        // Need at least two points to pin down rotation + translation (and
        // realistically ≥ d for a stable fit; we let Procrustes do its best).
        let points: Vec<&(usize, Vec<f64>)> = knowledge
            .known_points
            .iter()
            .filter(|(c, x)| *c < perturbed.cols() && x.len() == d)
            .collect();
        if points.len() < 2 {
            return None;
        }
        let m = points.len();
        let known_x = Matrix::from_fn(d, m, |r, c| points[c].1[r]);
        let known_y = Matrix::from_fn(d, m, |r, c| perturbed[(r, points[c].0)]);

        let mu_x = known_x.row_means();
        let mu_y = known_y.row_means();
        let xc = Matrix::from_fn(d, m, |r, c| known_x[(r, c)] - mu_x[r]);
        let yc = Matrix::from_fn(d, m, |r, c| known_y[(r, c)] - mu_y[r]);

        let r_hat = procrustes_rotation(&xc, &yc).ok()?;
        // t̂ = μ_Y − R̂·μ_X.
        let rmu = r_hat.matvec(&mu_x).ok()?;
        let t_hat: Vec<f64> = mu_y.iter().zip(&rmu).map(|(&a, &b)| a - b).collect();

        // X̂ = R̂ᵀ (Y − t̂).
        let shifted = Matrix::from_fn(d, perturbed.cols(), |r, c| perturbed[(r, c)] - t_hat[r]);
        r_hat.transpose().matmul(&shifted).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::minimum_privacy_guarantee;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::randn_matrix;
    use sap_perturb::GeometricPerturbation;

    /// Without noise, enough known points fully break the perturbation —
    /// this is the paper's motivation for Δ.
    #[test]
    fn breaks_noiseless_perturbation_completely() {
        let mut rng = StdRng::seed_from_u64(30);
        let x = randn_matrix(4, 300, &mut rng);
        let g = GeometricPerturbation::random(4, 0.0, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 8);
        let est = DistanceInference.estimate(&y, &knowledge).unwrap();
        let rho = minimum_privacy_guarantee(&x, &est);
        assert!(rho < 1e-6, "noiseless perturbation fully broken, rho {rho}");
    }

    /// With noise, reconstruction is capped at the noise floor.
    #[test]
    fn noise_leaves_privacy_floor() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = randn_matrix(4, 400, &mut rng);
        let sigma = 0.4;
        let g = GeometricPerturbation::random(4, sigma, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 8);
        let est = DistanceInference.estimate(&y, &knowledge).unwrap();
        let rho = minimum_privacy_guarantee(&x, &est);
        assert!(
            rho > 0.25,
            "noise should leave a floor near sigma, rho {rho}"
        );
    }

    #[test]
    fn fewer_than_two_points_inapplicable() {
        let mut rng = StdRng::seed_from_u64(32);
        let x = randn_matrix(3, 50, &mut rng);
        let knowledge = AttackerKnowledge::worst_case(&x, 1);
        assert!(DistanceInference.estimate(&x, &knowledge).is_none());
        assert!(DistanceInference
            .estimate(&x, &AttackerKnowledge::default())
            .is_none());
    }

    #[test]
    fn stale_indices_filtered() {
        let mut rng = StdRng::seed_from_u64(33);
        let x = randn_matrix(3, 10, &mut rng);
        let mut knowledge = AttackerKnowledge::worst_case(&x, 2);
        // Point to columns that do not exist in the perturbed release.
        knowledge.known_points[0].0 = 99;
        knowledge.known_points[1].0 = 100;
        assert!(DistanceInference.estimate(&x, &knowledge).is_none());
    }

    #[test]
    fn more_known_points_means_stronger_attack() {
        let mut rng = StdRng::seed_from_u64(34);
        let x = randn_matrix(5, 500, &mut rng);
        let g = GeometricPerturbation::random(5, 0.1, &mut rng);
        let (y, _) = g.perturb(&x, &mut rng);
        let rho_few = {
            let k = AttackerKnowledge::worst_case(&x, 2);
            DistanceInference
                .estimate(&y, &k)
                .map(|e| minimum_privacy_guarantee(&x, &e))
                .unwrap()
        };
        let rho_many = {
            let k = AttackerKnowledge::worst_case(&x, 50);
            DistanceInference
                .estimate(&y, &k)
                .map(|e| minimum_privacy_guarantee(&x, &e))
                .unwrap()
        };
        assert!(
            rho_many <= rho_few + 0.05,
            "more points should not weaken the attack: few={rho_few}, many={rho_many}"
        );
    }
}
