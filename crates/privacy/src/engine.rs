//! The staged, parallel candidate-evaluation engine behind [`crate::optimize`].
//!
//! The serial optimizer evaluated every candidate under the full attack
//! suite, one after another, drawing all randomness from a single RNG
//! stream — which made the expensive ICA reconstruction unaffordable in
//! the inner loop and left the system shipping with its strongest
//! attacker disabled. The engine restructures that loop into overlapping
//! stages without changing what a candidate's score *means*:
//!
//! 1. **Shared precomputation** (once per run): the evaluation subsample,
//!    the attacker-knowledge bundle, an independent reference subsample
//!    for the known-sample attack, and — when ICA is enabled — one
//!    [`WhiteningWorkspace`] eigendecomposition of the sample covariance
//!    that every candidate's ICA whitener is minted from.
//! 2. **Cheap stage** (all candidates, parallel): naive estimation,
//!    distance inference, and the known-sample attack score every
//!    candidate.
//! 3. **Prune** (successive halving, [`crate::optimize::StagedBudget`]): the top-scoring
//!    fraction survives; the rest keep their cheap score as an upper
//!    bound.
//! 4. **Expensive stage** (survivors only, parallel): PCA reconstruction
//!    and the workspace-whitened ICA reconstruction tighten each
//!    survivor's score to its full-suite guarantee.
//! 5. **Select**: the survivor with the highest full-suite guarantee
//!    wins (first index on ties). The cheap-stage winner always survives,
//!    so the staged selection is never worse than fully evaluating only
//!    the cheap winner.
//!
//! # Determinism
//!
//! Candidates draw from **deterministic per-candidate RNG streams**: the
//! run draws one `run_seed` from the caller's RNG, and candidate `i`
//! seeds a fresh [`StdRng`] with `mix(run_seed, i)` (a SplitMix64-style
//! finalizer). A candidate's perturbation, noise realization, and score
//! therefore depend only on `(run_seed, i)` and the shared
//! precomputation — never on thread count or scheduling. With pruning
//! disabled, [`run`] is **bit-identical** to [`serial_reference`] for
//! every worker count (`tests/optimize_equivalence.rs` pins this);
//! enabling pruning changes only *which* candidates pay for the
//! expensive stage.

use crate::attack::{
    Attack, AttackSuite, AttackerKnowledge, DistanceInference, IcaReconstruction,
    KnownSampleAttack, NaiveEstimation, PcaReconstruction,
};
use crate::metric::minimum_privacy_guarantee;
use crate::optimize::{subsample_columns, OptimizeError, OptimizedPerturbation, OptimizerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sap_ica::WhiteningWorkspace;
use sap_linalg::{parallel, Matrix};
use sap_perturb::GeometricPerturbation;
use std::time::Instant;

/// Per-stage telemetry of one engine run, surfaced through
/// `ProviderReport`/`SapOutcome` in `sap-core` and aggregated into the
/// server metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Candidates drawn and scored by the cheap stage.
    pub candidates: usize,
    /// Candidates that reached the expensive stage.
    pub survivors: usize,
    /// Candidates pruned after the cheap stage.
    pub pruned: usize,
    /// Survivors on which the ICA reconstruction actually produced an
    /// estimate (ICA can decline: divergence, too few records).
    pub ica_applied: usize,
    /// Worker threads used for candidate evaluation.
    pub threads: usize,
    /// Whether the two-stage schedule pruned anything.
    pub staged: bool,
    /// Whether the ICA attack was part of the expensive stage.
    pub ica: bool,
    /// Wall time of the cheap stage (seconds).
    pub cheap_stage_s: f64,
    /// Wall time of the expensive stage (seconds).
    pub expensive_stage_s: f64,
    /// Wall time of the whole run, shared precomputation included.
    pub total_s: f64,
}

/// Result of one engine run: the winning perturbation plus observability.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// The selected perturbation, its full-suite guarantee, and the
    /// per-candidate history (see
    /// [`OptimizedPerturbation::history`] for staged semantics).
    pub result: OptimizedPerturbation,
    /// Every candidate's cheap-stage score, in candidate order.
    pub cheap_history: Vec<f64>,
    /// Per-stage telemetry.
    pub stats: EngineStats,
}

/// Derives candidate `index`'s RNG seed from the run seed — a
/// SplitMix64-style finalizer over `run_seed ⊕ (index · φ64)`, so
/// neighboring candidates land in unrelated regions of the seed space.
fn candidate_seed(run_seed: u64, index: u64) -> u64 {
    let mut z = run_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything shared by every candidate of one run.
struct RunContext {
    sample: Matrix,
    knowledge: AttackerKnowledge,
    cheap: AttackSuite,
    /// The known-sample adversary's knowledge, *derived once* from the
    /// reference subsample (the attack is PCA against estimated
    /// statistics; re-deriving marginals + covariance per candidate
    /// would put an O(d²·m) recomputation inside the cheap stage).
    known_sample: Option<AttackerKnowledge>,
    pca: PcaReconstruction,
    ica: Option<(IcaReconstruction, WhiteningWorkspace)>,
    run_seed: u64,
}

fn prepare<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rng: &mut R,
) -> Result<RunContext, OptimizeError> {
    if config.candidates == 0 {
        return Err(OptimizeError::NoCandidates);
    }
    let mut ctx = shared_context(x, config, rng)?;
    ctx.run_seed = rng.next_u64();
    Ok(ctx)
}

/// The per-run precomputation shared by [`run`], [`serial_reference`],
/// and the single-perturbation [`evaluate`]: evaluation subsample,
/// attacker knowledge, attack suites, whitening workspace. Does **not**
/// draw the run seed (single-perturbation evaluation has no candidates).
fn shared_context<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rng: &mut R,
) -> Result<RunContext, OptimizeError> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(OptimizeError::EmptyDataset {
            rows: x.rows(),
            cols: x.cols(),
        });
    }

    // One evaluation subsample and knowledge bundle shared by the whole
    // run: candidates must be compared on the same ground.
    let sample = subsample_columns(x, config.eval_sample, rng);
    // An independent draw models the known-sample adversary's reference
    // release (it coincides with `sample` only when the dataset is
    // smaller than the evaluation budget).
    let reference = subsample_columns(x, config.eval_sample, rng);
    let knowledge = AttackerKnowledge::worst_case(&sample, config.known_points);

    let mut cheap = AttackSuite::empty();
    cheap.push(Box::new(NaiveEstimation));
    cheap.push(Box::new(DistanceInference));
    let known_sample = if reference.cols() >= 4 {
        Some(KnownSampleAttack::new(reference).derived_knowledge())
    } else {
        None
    };

    let ica_attack = IcaReconstruction::default();
    let ica = if config.use_ica && sample.cols() >= 8 {
        WhiteningWorkspace::from_covariance(
            &sample.column_covariance(),
            ica_attack.config.whiten_eps,
        )
        .ok()
        .map(|ws| (ica_attack, ws))
    } else {
        None
    };

    Ok(RunContext {
        sample,
        knowledge,
        cheap,
        known_sample,
        pca: PcaReconstruction,
        ica,
        run_seed: 0,
    })
}

/// Rebuilds candidate `i` from its derived seed: the perturbation and the
/// realized perturbed sample. Cheap relative to any attack, so stages
/// regenerate instead of holding every candidate's matrix alive.
fn regenerate(
    ctx: &RunContext,
    config: &OptimizerConfig,
    i: usize,
) -> (GeometricPerturbation, Matrix) {
    let mut crng = StdRng::seed_from_u64(candidate_seed(ctx.run_seed, i as u64));
    let cand = GeometricPerturbation::random(ctx.sample.rows(), config.noise_sigma, &mut crng);
    let (y, _delta) = cand.perturb(&ctx.sample, &mut crng);
    (cand, y)
}

/// Cheap-stage score of candidate `i`.
fn eval_cheap(ctx: &RunContext, config: &OptimizerConfig, i: usize) -> f64 {
    let (_cand, y) = regenerate(ctx, config, i);
    cheap_score(ctx, &y)
}

/// The cheap suite on one realized perturbed sample: naive + distance
/// inference, plus the known-sample attack (PCA against the reference
/// sample's precomputed estimated statistics).
fn cheap_score(ctx: &RunContext, y: &Matrix) -> f64 {
    let mut rho = ctx.cheap.privacy_guarantee(&ctx.sample, y, &ctx.knowledge);
    if let Some(ks) = &ctx.known_sample {
        if let Some(est) = ctx.pca.estimate(y, ks) {
            rho = rho.min(minimum_privacy_guarantee(&ctx.sample, &est));
        }
    }
    rho
}

/// Full-suite score of candidate `i`: the cheap score tightened by the
/// expensive reconstructions. Returns `(score, ica_applied)`.
fn eval_expensive(
    ctx: &RunContext,
    config: &OptimizerConfig,
    i: usize,
    cheap_rho: f64,
) -> (f64, bool) {
    let (cand, y) = regenerate(ctx, config, i);
    let (rho, ica_applied) = expensive_score(ctx, &cand, &y, cheap_rho);
    (rho, ica_applied)
}

/// The expensive reconstructions (PCA + workspace-whitened ICA) on one
/// realized perturbed sample, folded into its cheap score.
fn expensive_score(
    ctx: &RunContext,
    cand: &GeometricPerturbation,
    y: &Matrix,
    cheap_rho: f64,
) -> (f64, bool) {
    let mut rho = cheap_rho;
    if let Some(est) = ctx.pca.estimate(y, &ctx.knowledge) {
        rho = rho.min(minimum_privacy_guarantee(&ctx.sample, &est));
    }
    let mut ica_applied = false;
    if let Some((ica, ws)) = &ctx.ica {
        // The noise variance belongs to the *evaluated* perturbation, not
        // the optimizer config — engine candidates always carry the
        // config's sigma, but `evaluate` accepts arbitrary perturbations
        // whose own NoiseSpec must drive the whitener's spectrum.
        let noise_var = cand.noise().sigma * cand.noise().sigma;
        if let Ok(whitener) =
            ws.whitener_for_rotation(cand.base().rotation(), y.row_means(), noise_var)
        {
            if let Some(est) = ica.estimate_with_whitener(y, &ctx.knowledge, whitener) {
                rho = rho.min(minimum_privacy_guarantee(&ctx.sample, &est));
                ica_applied = true;
            }
        }
    }
    (rho, ica_applied)
}

/// Scores **one** given perturbation under the engine's scoring model —
/// the same shared precomputation, cheap suite, and expensive
/// PCA/workspace-ICA stage a candidate would get. This is what the
/// protocol actors use for the satisfaction ratio `sᵢ = ρᵢᴳ / ρᵢ`:
/// numerator and denominator must come from the *same* attack model, or
/// the ratio compares incomparable scores.
///
/// Degenerate inputs (empty dataset) score `+∞` — "no attack applies" —
/// mirroring [`crate::attack::AttackSuite::privacy_guarantee`] on an
/// empty suite.
pub fn evaluate<R: Rng + ?Sized>(
    x: &Matrix,
    perturbation: &GeometricPerturbation,
    config: &OptimizerConfig,
    rng: &mut R,
) -> f64 {
    let Ok(ctx) = shared_context(x, config, rng) else {
        return f64::INFINITY;
    };
    let (y, _delta) = perturbation.perturb(&ctx.sample, rng);
    let cheap = cheap_score(&ctx, &y);
    let (rho, _ica) = expensive_score(&ctx, perturbation, &y, cheap);
    rho
}

/// Runs the staged, parallel engine on a `d × N` dataset. Worker count
/// comes from [`OptimizerConfig::threads`], defaulting to
/// [`sap_linalg::parallel::threads`] (the `SAP_LINALG_THREADS` override
/// applies); the staged schedule from [`OptimizerConfig::staged`].
///
/// # Errors
///
/// [`OptimizeError::NoCandidates`] / [`OptimizeError::EmptyDataset`] on a
/// malformed configuration or input.
pub fn run<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rng: &mut R,
) -> Result<EngineOutcome, OptimizeError> {
    let run_start = Instant::now();
    let ctx = prepare(x, config, rng)?;
    let n = config.candidates;
    let workers = config.threads.unwrap_or_else(parallel::threads).max(1);

    // Stage 1: cheap attacks on every candidate. Each slot depends only
    // on its index and the shared context, so any worker count produces
    // the same bits.
    let cheap_start = Instant::now();
    let mut cheap = vec![0.0f64; n];
    parallel::for_each_chunk_mut_with(workers, &mut cheap, 1, |i, slot| {
        slot[0] = eval_cheap(&ctx, config, i);
    });
    let cheap_stage_s = cheap_start.elapsed().as_secs_f64();

    // Prune: survivors are the top cheap scorers (ties resolved by lower
    // index — a total, deterministic order), re-sorted to candidate
    // order so the selection loop below mirrors the serial reference.
    let m = config.staged.survivors(n);
    let survivors: Vec<usize> = if m == n {
        (0..n).collect()
    } else {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| cheap[b].total_cmp(&cheap[a]).then_with(|| a.cmp(&b)));
        let mut top = order[..m].to_vec();
        top.sort_unstable();
        top
    };

    // Stage 2: expensive reconstructions on the survivors.
    let expensive_start = Instant::now();
    let mut full: Vec<(f64, bool)> = vec![(0.0, false); survivors.len()];
    parallel::for_each_chunk_mut_with(workers, &mut full, 1, |j, slot| {
        let i = survivors[j];
        slot[0] = eval_expensive(&ctx, config, i, cheap[i]);
    });
    let expensive_stage_s = expensive_start.elapsed().as_secs_f64();

    // Select: highest full-suite guarantee, first index on ties (the
    // serial loop's strict-improvement rule).
    let mut history = cheap.clone();
    let mut best_j = 0;
    for (j, &(rho, _)) in full.iter().enumerate() {
        history[survivors[j]] = rho;
        if rho > full[best_j].0 {
            best_j = j;
        }
    }
    let winner = survivors[best_j];
    let (perturbation, _) = regenerate(&ctx, config, winner);
    let ica_applied = full.iter().filter(|&&(_, ok)| ok).count();

    Ok(EngineOutcome {
        result: OptimizedPerturbation {
            perturbation,
            privacy_guarantee: full[best_j].0,
            history,
        },
        cheap_history: cheap,
        stats: EngineStats {
            candidates: n,
            survivors: survivors.len(),
            pruned: n - survivors.len(),
            ica_applied,
            threads: workers,
            staged: m != n,
            ica: ctx.ica.is_some(),
            cheap_stage_s,
            expensive_stage_s,
            total_s: run_start.elapsed().as_secs_f64(),
        },
    })
}

/// The specification the engine is tested against: a plain serial loop
/// over the same per-candidate seed streams, every candidate evaluated
/// under the full suite, no pruning, no worker threads. With
/// [`crate::optimize::StagedBudget::enabled`]` = false`, [`run`] must reproduce this
/// function's output bit for bit.
///
/// # Errors
///
/// As [`run`].
pub fn serial_reference<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rng: &mut R,
) -> Result<EngineOutcome, OptimizeError> {
    let run_start = Instant::now();
    let ctx = prepare(x, config, rng)?;
    let n = config.candidates;

    let mut cheap_history = Vec::with_capacity(n);
    let mut history = Vec::with_capacity(n);
    let mut ica_applied = 0;
    let mut best: Option<(usize, f64)> = None;
    for i in 0..n {
        let cheap_rho = eval_cheap(&ctx, config, i);
        let (rho, ica_ok) = eval_expensive(&ctx, config, i, cheap_rho);
        cheap_history.push(cheap_rho);
        history.push(rho);
        if ica_ok {
            ica_applied += 1;
        }
        if best.is_none_or(|(_, b)| rho > b) {
            best = Some((i, rho));
        }
    }
    let (winner, privacy_guarantee) = best.expect("candidates > 0");
    let (perturbation, _) = regenerate(&ctx, config, winner);
    let total_s = run_start.elapsed().as_secs_f64();

    Ok(EngineOutcome {
        result: OptimizedPerturbation {
            perturbation,
            privacy_guarantee,
            history,
        },
        cheap_history,
        stats: EngineStats {
            candidates: n,
            survivors: n,
            pruned: 0,
            ica_applied,
            threads: 1,
            staged: false,
            ica: ctx.ica.is_some(),
            cheap_stage_s: 0.0,
            expensive_stage_s: 0.0,
            total_s,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::StagedBudget;
    use rand::RngExt;

    /// Skewed, non-Gaussian data: every attack in the suite applies.
    fn skewed_data(d: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(d, n, |r, _| {
            let u: f64 = rng.random_range(0.0001..1.0);
            if r % 2 == 0 {
                (-u.ln()) * 0.2 + 0.1 * r as f64
            } else {
                u * u + 0.05 * r as f64
            }
        })
    }

    fn config(candidates: usize, use_ica: bool, staged: bool) -> OptimizerConfig {
        OptimizerConfig {
            candidates,
            noise_sigma: 0.05,
            known_points: 4,
            eval_sample: 96,
            use_ica,
            staged: StagedBudget {
                enabled: staged,
                survivor_fraction: 0.25,
                min_survivors: 2,
            },
            threads: None,
        }
    }

    #[test]
    fn parallel_matches_serial_reference_bitwise() {
        let x = skewed_data(4, 220, 1);
        for candidates in [1usize, 3, 9] {
            for threads in [1usize, 2, 4] {
                let cfg = OptimizerConfig {
                    threads: Some(threads),
                    ..config(candidates, false, false)
                };
                let serial = serial_reference(&x, &cfg, &mut StdRng::seed_from_u64(7)).unwrap();
                let par = run(&x, &cfg, &mut StdRng::seed_from_u64(7)).unwrap();
                assert_eq!(
                    par.result.privacy_guarantee.to_bits(),
                    serial.result.privacy_guarantee.to_bits(),
                    "candidates={candidates} threads={threads}"
                );
                assert_eq!(par.result.history, serial.result.history);
                assert_eq!(par.cheap_history, serial.cheap_history);
                assert_eq!(par.result.perturbation, serial.result.perturbation);
                assert_eq!(par.stats.ica_applied, serial.stats.ica_applied);
            }
        }
    }

    #[test]
    fn staged_never_beats_unstaged_and_never_undershoots_cheap_winner() {
        let x = skewed_data(3, 260, 2);
        let unstaged = run(&x, &config(12, false, false), &mut StdRng::seed_from_u64(3)).unwrap();
        let staged = run(&x, &config(12, false, true), &mut StdRng::seed_from_u64(3)).unwrap();
        // Same run seed → same candidates; the staged maximum ranges over
        // a subset of the unstaged one.
        assert!(staged.result.privacy_guarantee <= unstaged.result.privacy_guarantee + 1e-15);

        // Pruning to a single survivor selects exactly the cheap-stage
        // winner; the default schedule keeps that candidate too, so its
        // selection can only be better.
        let cheap_winner_only = OptimizerConfig {
            staged: StagedBudget {
                enabled: true,
                survivor_fraction: 0.0,
                min_survivors: 1,
            },
            ..config(12, false, true)
        };
        let floor = run(&x, &cheap_winner_only, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(floor.stats.survivors, 1);
        assert!(staged.result.privacy_guarantee >= floor.result.privacy_guarantee - 1e-15);
    }

    #[test]
    fn stats_reflect_the_schedule() {
        let x = skewed_data(3, 200, 4);
        let out = run(&x, &config(16, false, true), &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(out.stats.candidates, 16);
        assert_eq!(out.stats.survivors, 4);
        assert_eq!(out.stats.pruned, 12);
        assert!(out.stats.staged);
        assert!(!out.stats.ica);
        assert!(out.stats.threads >= 1);
        assert!(out.stats.total_s >= 0.0);
        assert_eq!(out.result.history.len(), 16);
        assert_eq!(out.cheap_history.len(), 16);
        // Survivors' history entries are tightened, never loosened.
        for (h, c) in out.result.history.iter().zip(&out.cheap_history) {
            assert!(h <= &(c + 1e-15));
        }
    }

    #[test]
    fn ica_stage_applies_on_non_gaussian_data() {
        // Independent uniform-ish attributes: FastICA's canonical case.
        let mut rng = StdRng::seed_from_u64(6);
        let x = Matrix::from_fn(2, 400, |_, _| rng.random_range(0.0..1.0));
        let out = run(&x, &config(6, true, true), &mut StdRng::seed_from_u64(8)).unwrap();
        assert!(out.stats.ica);
        assert!(
            out.stats.ica_applied > 0,
            "ICA should reconstruct at least one survivor: {:?}",
            out.stats
        );
        // And the serial reference agrees bit-for-bit with pruning off.
        let cfg = config(6, true, false);
        let a = serial_reference(&x, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = run(&x, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(
            a.result.privacy_guarantee.to_bits(),
            b.result.privacy_guarantee.to_bits()
        );
        assert_eq!(a.result.history, b.result.history);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let x = skewed_data(2, 50, 10);
        assert_eq!(
            run(&x, &config(0, false, true), &mut StdRng::seed_from_u64(1)).unwrap_err(),
            OptimizeError::NoCandidates
        );
        let empty = Matrix::zeros(3, 0);
        assert!(matches!(
            run(
                &empty,
                &config(4, false, true),
                &mut StdRng::seed_from_u64(1)
            )
            .unwrap_err(),
            OptimizeError::EmptyDataset { rows: 3, cols: 0 }
        ));
    }

    #[test]
    fn candidate_seeds_are_spread() {
        let s: Vec<u64> = (0..64).map(|i| candidate_seed(0xDEAD_BEEF, i)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len());
    }
}
