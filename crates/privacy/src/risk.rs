//! The multiparty risk model: equations (1) and (2) of the brief and the
//! minimum-parties bound of Figure 4.
//!
//! Definitions (Section 2 of the brief):
//!
//! * **Source identifiability** `πᵢ = Pr(DPᵢ | Xᵢ)` — the probability that a
//!   received dataset is traced back to its provider. SAP's random exchange
//!   reduces it to `1/(k−1)`.
//! * **Satisfaction level** `sᵢ = ρᵢᴳ / ρᵢ` — how much of the locally
//!   optimized guarantee survives under the unified perturbation `G`.
//! * **Risk of privacy breach** (eq. 1):
//!   `Rᵢᴳ = πᵢ·(bᵢ − sᵢρᵢ)/bᵢ = πᵢ·(1 − sᵢρᵢ/bᵢ)`.
//! * **SAP overall risk** (eq. 2):
//!   `Rᵢ^SAP = max{ (bᵢ−ρᵢ)/bᵢ, (bᵢ−sᵢρᵢ)/bᵢ · 1/(k−1) }` — the first term
//!   is what the *other data providers* (who see the locally perturbed data
//!   with identifiability 1) can breach; the second what the *miner* (who
//!   sees unified data with identifiability `1/(k−1)`) can breach.

use serde::{Deserialize, Serialize};

/// Source identifiability under SAP's random exchange: `πᵢ = 1/(k−1)`.
///
/// # Panics
///
/// Panics when `k < 2` (the exchange needs a non-coordinator receiver).
pub fn source_identifiability(k: usize) -> f64 {
    assert!(k >= 2, "SAP requires at least 2 providers");
    1.0 / (k - 1) as f64
}

/// Satisfaction level `s = ρᴳ / ρ_local`.
///
/// # Panics
///
/// Panics when `rho_local <= 0` or either input is negative/non-finite.
pub fn satisfaction(rho_global: f64, rho_local: f64) -> f64 {
    assert!(
        rho_global.is_finite() && rho_global >= 0.0,
        "rho_global must be non-negative"
    );
    assert!(
        rho_local.is_finite() && rho_local > 0.0,
        "rho_local must be positive"
    );
    rho_global / rho_local
}

/// Equation (1): risk of privacy breach
/// `R = π·(1 − s·ρ/b)`, clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics when `π ∉ [0, 1]`, `b <= 0`, or `s`/`ρ` are negative.
pub fn risk_of_breach(pi: f64, s: f64, rho: f64, b: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&pi),
        "identifiability must be in [0,1]"
    );
    assert!(b > 0.0, "bound must be positive");
    assert!(s >= 0.0 && rho >= 0.0, "s and rho must be non-negative");
    (pi * (1.0 - s * rho / b)).clamp(0.0, 1.0)
}

/// The local residual risk `(b − ρ)/b` — eq. (2)'s first term: other
/// providers see the locally perturbed data with identifiability 1.
///
/// # Panics
///
/// Panics when `b <= 0` or `ρ < 0`.
pub fn local_risk(rho: f64, b: f64) -> f64 {
    assert!(b > 0.0, "bound must be positive");
    assert!(rho >= 0.0, "rho must be non-negative");
    ((b - rho) / b).clamp(0.0, 1.0)
}

/// Equation (2): the overall SAP risk
/// `max{ (b−ρ)/b, (b−sρ)/b · 1/(k−1) }`.
///
/// # Panics
///
/// Propagates the panics of [`local_risk`], [`risk_of_breach`] and
/// [`source_identifiability`].
pub fn sap_risk(b: f64, rho: f64, s: f64, k: usize) -> f64 {
    let provider_view = local_risk(rho, b);
    let miner_view = risk_of_breach(source_identifiability(k), s, rho, b);
    provider_view.max(miner_view)
}

/// The minimum number of parties needed to support an expected satisfaction
/// level `s0` at optimality rate `O` — the curve of the brief's Figure 4.
///
/// The brief plots this bound without restating its derivation; we require
/// the miner-side identifiability to be no larger than the residual privacy
/// slack (`π = 1/(k−1) ≤ 1 − s0·O`, see DESIGN.md §5), giving
///
/// ```text
/// k_min(s0, O) = 1 + ⌈ 1 / (1 − s0·O) ⌉
/// ```
///
/// Returns `None` when `s0·O ≥ 1` (no finite number of parties suffices).
///
/// # Panics
///
/// Panics when `s0` or `opt_rate` fall outside `[0, 1]`.
pub fn min_parties(s0: f64, opt_rate: f64) -> Option<usize> {
    assert!((0.0..=1.0).contains(&s0), "s0 must be in [0,1]");
    assert!(
        (0.0..=1.0).contains(&opt_rate),
        "optimality rate must be in [0,1]"
    );
    let slack = 1.0 - s0 * opt_rate;
    if slack <= 0.0 {
        return None;
    }
    Some(1 + (1.0 / slack).ceil() as usize)
}

/// The per-provider privacy profile the protocol tracks: mean optimized
/// guarantee and empirical bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyProfile {
    /// Locally optimized privacy guarantee `ρᵢ` (or its mean over rounds).
    pub rho: f64,
    /// Empirical upper bound `bᵢ` (`b̂`).
    pub bound: f64,
}

impl PrivacyProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ρ ≤ b` and `b > 0`.
    pub fn new(rho: f64, bound: f64) -> Self {
        assert!(bound > 0.0, "bound must be positive");
        assert!(
            (0.0..=bound + 1e-12).contains(&rho),
            "rho must be in [0, bound]"
        );
        PrivacyProfile { rho, bound }
    }

    /// Optimality rate `O = ρ/b`.
    pub fn optimality_rate(&self) -> f64 {
        self.rho / self.bound
    }

    /// This provider's SAP risk for a unified perturbation yielding
    /// satisfaction `s` among `k` providers (eq. 2).
    pub fn sap_risk(&self, s: f64, k: usize) -> f64 {
        sap_risk(self.bound, self.rho, s, k)
    }

    /// Whether joining a `k`-party SAP session at satisfaction `s` is
    /// rational: the miner-side risk term must not dominate the risk the
    /// provider already accepts locally.
    pub fn joining_is_rational(&self, s: f64, k: usize) -> bool {
        let miner = risk_of_breach(source_identifiability(k), s, self.rho, self.bound);
        miner <= local_risk(self.rho, self.bound) + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiability_formula() {
        assert_eq!(source_identifiability(2), 1.0);
        assert_eq!(source_identifiability(5), 0.25);
        assert_eq!(source_identifiability(11), 0.1);
    }

    #[test]
    #[should_panic(expected = "at least 2 providers")]
    fn identifiability_needs_two() {
        let _ = source_identifiability(1);
    }

    #[test]
    fn satisfaction_ratio() {
        assert_eq!(satisfaction(0.8, 1.0), 0.8);
        assert_eq!(satisfaction(1.0, 0.5), 2.0); // unified can exceed local
    }

    #[test]
    fn eq1_matches_paper_form() {
        // R = π (1 - s ρ / b): π=0.25, s=0.9, ρ=0.8, b=1.0
        let r = risk_of_breach(0.25, 0.9, 0.8, 1.0);
        assert!((r - 0.25 * (1.0 - 0.72)).abs() < 1e-12);
    }

    #[test]
    fn eq1_clamped() {
        // s·ρ > b would give negative risk; clamp to 0.
        assert_eq!(risk_of_breach(0.5, 2.0, 1.0, 1.0), 0.0);
        assert_eq!(risk_of_breach(1.0, 0.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn eq2_takes_the_max() {
        // Small k: miner view dominates. Large k: provider view dominates.
        let b = 1.0;
        let rho = 0.9;
        let s = 0.5;
        let r2 = sap_risk(b, rho, s, 2); // π = 1
        assert!((r2 - (1.0 - 0.45)).abs() < 1e-12);
        let r20 = sap_risk(b, rho, s, 20); // π = 1/19, miner term tiny
        assert!(
            (r20 - 0.1).abs() < 1e-12,
            "local term (b-ρ)/b = 0.1 dominates"
        );
    }

    #[test]
    fn sap_risk_decreases_with_k_until_local_floor() {
        let b = 1.0;
        let rho = 0.8;
        let s = 0.9;
        let mut prev = f64::INFINITY;
        for k in 2..20 {
            let r = sap_risk(b, rho, s, k);
            assert!(r <= prev + 1e-12, "risk must be non-increasing in k");
            assert!(r >= local_risk(rho, b) - 1e-12, "never below local floor");
            prev = r;
        }
    }

    #[test]
    fn min_parties_matches_design_examples() {
        // DESIGN.md §5 example values.
        assert_eq!(min_parties(0.99, 0.98), Some(35));
        assert_eq!(min_parties(0.99, 0.95), Some(18));
        assert_eq!(min_parties(0.99, 0.89), Some(10));
        // Monotone in s0 and O.
        let a = min_parties(0.90, 0.95).unwrap();
        let b = min_parties(0.99, 0.95).unwrap();
        assert!(b > a);
        let c = min_parties(0.95, 0.89).unwrap();
        let d = min_parties(0.95, 0.98).unwrap();
        assert!(d > c);
    }

    #[test]
    fn min_parties_saturates() {
        assert_eq!(min_parties(1.0, 1.0), None);
        assert_eq!(min_parties(0.0, 0.5), Some(2));
    }

    #[test]
    fn profile_accessors() {
        let p = PrivacyProfile::new(0.8, 1.0);
        assert!((p.optimality_rate() - 0.8).abs() < 1e-12);
        assert!(p.sap_risk(0.9, 5) >= 0.0);
    }

    #[test]
    fn joining_rationality_threshold() {
        let p = PrivacyProfile::new(0.9, 1.0);
        // With 2 parties (π = 1) and s < 1, joining is irrational.
        assert!(!p.joining_is_rational(0.9, 2));
        // With many parties the miner term vanishes.
        assert!(p.joining_is_rational(0.9, 30));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn profile_rejects_bad_bound() {
        let _ = PrivacyProfile::new(0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn profile_rejects_rho_above_bound() {
        let _ = PrivacyProfile::new(1.5, 1.0);
    }
}
