//! The randomized perturbation optimizer.
//!
//! "A randomized perturbation optimization algorithm is also developed in
//! previous work \[2\] to provide high privacy guarantee with high
//! probability (Figure 2)." The algorithm is a randomized search: sample
//! candidate perturbations, score each by the minimum privacy guarantee
//! under the attack suite, keep the best. The brief then builds on three
//! derived statistics:
//!
//! * the optimized guarantee `ρᵢ` (best candidate of a run),
//! * the empirical bound `b̂ = max{ρ^(i)} over n rounds`,
//! * the optimality rate `O = ρ̄ / b̂`.
//!
//! Since the staged-engine refactor, [`optimize`] is a thin wrapper over
//! [`crate::engine::run`]: candidates are evaluated in parallel on
//! deterministic per-candidate RNG streams, and a successive-halving
//! schedule prunes the field on cheap attacks before the expensive
//! PCA/ICA reconstructions run — which is what makes
//! [`OptimizerConfig::use_ica`]` = true` the affordable default. See the
//! engine module docs for the schedule and the determinism rules.

use rand::seq::SliceRandom;
use rand::Rng;
use sap_linalg::{vecops, Matrix};
use sap_perturb::GeometricPerturbation;
use std::fmt;

/// Failures of the optimizer — all configuration-shaped, all detectable
/// before any candidate is evaluated. Typed (rather than panicking) so a
/// malformed client config surfaces as a session error instead of killing
/// a server-side role thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizeError {
    /// `candidates == 0`: there is nothing to select a winner from.
    NoCandidates,
    /// The dataset has no rows or no columns.
    EmptyDataset {
        /// Rows (attributes) of the rejected dataset.
        rows: usize,
        /// Columns (records) of the rejected dataset.
        cols: usize,
    },
    /// `rounds == 0` passed to [`estimate_bound`].
    NoRounds,
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::NoCandidates => write!(f, "optimizer needs at least one candidate"),
            OptimizeError::EmptyDataset { rows, cols } => {
                write!(f, "cannot optimize an empty dataset ({rows} x {cols})")
            }
            OptimizeError::NoRounds => write!(f, "bound estimation needs at least one round"),
        }
    }
}

impl std::error::Error for OptimizeError {}

/// The staged attack-schedule budget: how aggressively the engine prunes
/// candidates on cheap attacks before the expensive reconstruction
/// attacks run.
///
/// With staging enabled the engine scores every candidate under the
/// cheap suite (naive, distance-inference, known-sample), keeps the
/// top-scoring survivors, and only those pay for the PCA/ICA stage. The
/// selected candidate's guarantee is always its **full-suite** guarantee;
/// pruning can only cost optimality (a candidate whose cheap score
/// undersold it), never correctness — and the cheap-stage winner is
/// always among the survivors, so the staged selection is never worse
/// than "evaluate only the cheap winner fully".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagedBudget {
    /// Run the two-stage schedule. Disabled, every candidate gets the
    /// full suite (the reference semantics the equivalence tests pin).
    pub enabled: bool,
    /// Fraction of the field that survives to the expensive stage
    /// (successive halving with one rung; `0.25` keeps the top quarter).
    pub survivor_fraction: f64,
    /// Survivor floor: small fields are never pruned below this.
    pub min_survivors: usize,
}

impl Default for StagedBudget {
    fn default() -> Self {
        StagedBudget {
            enabled: true,
            survivor_fraction: 0.25,
            min_survivors: 4,
        }
    }
}

impl StagedBudget {
    /// How many of `candidates` survive to the expensive stage. Floored
    /// at one whenever there are candidates at all — a budget of zero
    /// survivors (e.g. `min_survivors: 0` with a zero or non-finite
    /// fraction, both reachable from a client-supplied config) must
    /// never leave the engine without a winner to select.
    pub fn survivors(&self, candidates: usize) -> usize {
        if !self.enabled {
            return candidates;
        }
        let frac = (candidates as f64 * self.survivor_fraction).ceil() as usize;
        frac.max(self.min_survivors)
            .clamp(1.min(candidates), candidates)
    }
}

/// Configuration of the randomized optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// Number of random candidates per optimization run.
    pub candidates: usize,
    /// Noise level of every candidate (the protocol uses a common noise
    /// component, so candidates share σ).
    pub noise_sigma: f64,
    /// Known-point budget granted to the distance-inference attack.
    pub known_points: usize,
    /// Maximum number of records used for attack evaluation. Large datasets
    /// are subsampled: the metric is a per-attribute standard deviation, so
    /// a few hundred records estimate it tightly while keeping the inner
    /// loop cheap.
    pub eval_sample: usize,
    /// Include the (expensive) ICA attack in the evaluation suite.
    /// Default `true` since the staged engine made it affordable.
    pub use_ica: bool,
    /// The staged attack-schedule budget (cheap stage → prune →
    /// expensive stage).
    pub staged: StagedBudget,
    /// Worker-thread override for candidate evaluation. `None` (the
    /// default) uses [`sap_linalg::parallel::threads`], i.e. the machine's
    /// parallelism capped by `SAP_LINALG_THREADS`; `Some(1)` forces the
    /// serial path. Results are bit-identical for every setting.
    pub threads: Option<usize>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            candidates: 32,
            noise_sigma: 0.05,
            known_points: 6,
            eval_sample: 300,
            use_ica: true,
            staged: StagedBudget::default(),
            threads: None,
        }
    }
}

/// Result of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizedPerturbation {
    /// The winning perturbation.
    pub perturbation: GeometricPerturbation,
    /// Its minimum privacy guarantee under the attack suite.
    pub privacy_guarantee: f64,
    /// Guarantee of every candidate, in sample order (for Figure 2's
    /// random-vs-optimized distributions). Under a staged run, pruned
    /// candidates carry their cheap-stage score (an upper bound on their
    /// full-suite guarantee); survivors carry the full-suite score.
    pub history: Vec<f64>,
}

/// Scores one perturbation on (a subsample of) the data under the
/// engine's scoring model — a thin wrapper over
/// [`crate::engine::evaluate`], so single-perturbation scores (the
/// satisfaction ratio, Figure 2's random baseline) are directly
/// comparable with optimizer candidate scores.
pub fn evaluate_perturbation<R: Rng + ?Sized>(
    x: &Matrix,
    perturbation: &GeometricPerturbation,
    config: &OptimizerConfig,
    rng: &mut R,
) -> f64 {
    crate::engine::evaluate(x, perturbation, config, rng)
}

/// Runs the randomized optimizer on a `d × N` dataset: draws
/// `config.candidates` random perturbations, scores each under the staged
/// attack schedule, keeps the one with the highest minimum privacy
/// guarantee. This is [`crate::engine::run`] with the per-stage
/// telemetry dropped.
///
/// # Errors
///
/// [`OptimizeError::NoCandidates`] / [`OptimizeError::EmptyDataset`] on a
/// malformed configuration or input.
pub fn optimize<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rng: &mut R,
) -> Result<OptimizedPerturbation, OptimizeError> {
    crate::engine::run(x, config, rng).map(|outcome| outcome.result)
}

/// Statistics of `n` independent optimization rounds — the quantities behind
/// the paper's Figures 3 and 4.
#[derive(Debug, Clone)]
pub struct BoundEstimate {
    /// Optimized guarantee of each round, `ρ^(i)`.
    pub round_guarantees: Vec<f64>,
    /// Empirical bound `b̂ = max ρ^(i)`.
    pub bound: f64,
    /// Mean optimized guarantee `ρ̄`.
    pub mean_guarantee: f64,
}

impl BoundEstimate {
    /// The optimality rate `O = ρ̄ / b̂` (paper Section 2). Returns 0 when
    /// the bound is degenerate.
    pub fn optimality_rate(&self) -> f64 {
        if self.bound > 1e-12 {
            self.mean_guarantee / self.bound
        } else {
            0.0
        }
    }
}

/// Runs `rounds` optimization rounds and estimates `b̂` and `O` — the
/// paper's procedure: "The bound bᵢ is usually estimated empirically by
/// looking at the maximum privacy guarantee of n-round optimizations."
///
/// # Errors
///
/// [`OptimizeError::NoRounds`] when `rounds == 0`, plus anything
/// [`optimize`] rejects.
pub fn estimate_bound<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rounds: usize,
    rng: &mut R,
) -> Result<BoundEstimate, OptimizeError> {
    if rounds == 0 {
        return Err(OptimizeError::NoRounds);
    }
    let round_guarantees: Vec<f64> = (0..rounds)
        .map(|_| optimize(x, config, rng).map(|o| o.privacy_guarantee))
        .collect::<Result<_, _>>()?;
    let bound = vecops::max(&round_guarantees);
    let mean_guarantee = vecops::mean(&round_guarantees);
    Ok(BoundEstimate {
        round_guarantees,
        bound,
        mean_guarantee,
    })
}

/// Draws a random perturbation and scores it — the "random perturbations"
/// baseline of Figure 2.
pub fn random_baseline<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rng: &mut R,
) -> (GeometricPerturbation, f64) {
    let cand = GeometricPerturbation::random(x.rows(), config.noise_sigma, rng);
    let rho = evaluate_perturbation(x, &cand, config, rng);
    (cand, rho)
}

pub(crate) fn subsample_columns<R: Rng + ?Sized>(x: &Matrix, limit: usize, rng: &mut R) -> Matrix {
    if x.cols() <= limit {
        return x.clone();
    }
    let mut idx: Vec<usize> = (0..x.cols()).collect();
    idx.shuffle(rng);
    idx.truncate(limit);
    let cols: Vec<Vec<f64>> = idx.iter().map(|&c| x.column(c)).collect();
    Matrix::from_columns(&cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn skewed_data(d: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(d, n, |r, _| {
            let u: f64 = rng.random_range(0.0001..1.0);
            (-u.ln()) * 0.2 + 0.1 * r as f64
        })
    }

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            candidates: 8,
            noise_sigma: 0.05,
            known_points: 4,
            eval_sample: 120,
            use_ica: false,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn optimized_at_least_matches_every_candidate() {
        let x = skewed_data(4, 300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let opt = optimize(&x, &quick_config(), &mut rng).unwrap();
        assert_eq!(opt.history.len(), 8);
        let best_in_history = vecops::max(&opt.history);
        // Pruned candidates report cheap-stage scores (upper bounds), so
        // the winner matches the best *full* score, never exceeds the max.
        assert!(opt.privacy_guarantee <= best_in_history + 1e-12);
        assert!(opt.privacy_guarantee.is_finite());
    }

    #[test]
    fn unstaged_winner_is_history_maximum() {
        let x = skewed_data(4, 300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = OptimizerConfig {
            staged: StagedBudget {
                enabled: false,
                ..StagedBudget::default()
            },
            ..quick_config()
        };
        let opt = optimize(&x, &cfg, &mut rng).unwrap();
        let best_in_history = vecops::max(&opt.history);
        assert!((opt.privacy_guarantee - best_in_history).abs() < 1e-15);
        assert!(opt.history.iter().all(|&h| h <= opt.privacy_guarantee));
    }

    #[test]
    fn optimized_beats_mean_random_on_average() {
        // Figure 2's claim, in expectation over a few runs.
        let x = skewed_data(4, 300, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = quick_config();
        let mut opt_sum = 0.0;
        let mut rand_sum = 0.0;
        let runs = 5;
        for _ in 0..runs {
            opt_sum += optimize(&x, &cfg, &mut rng).unwrap().privacy_guarantee;
            rand_sum += random_baseline(&x, &cfg, &mut rng).1;
        }
        assert!(
            opt_sum / runs as f64 >= rand_sum / runs as f64,
            "optimized mean {} should beat random mean {}",
            opt_sum / runs as f64,
            rand_sum / runs as f64
        );
    }

    #[test]
    fn bound_estimate_consistency() {
        let x = skewed_data(3, 200, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let est = estimate_bound(&x, &quick_config(), 6, &mut rng).unwrap();
        assert_eq!(est.round_guarantees.len(), 6);
        assert!(est.bound >= est.mean_guarantee);
        let rate = est.optimality_rate();
        assert!(
            (0.0..=1.0 + 1e-12).contains(&rate),
            "optimality rate {rate} outside [0,1]"
        );
        // Bound is the max of the rounds.
        assert!((est.bound - vecops::max(&est.round_guarantees)).abs() < 1e-15);
    }

    #[test]
    fn subsampling_keeps_dimensions() {
        let x = skewed_data(4, 500, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = OptimizerConfig {
            eval_sample: 50,
            ..quick_config()
        };
        // evaluate through the public API; implicitly exercises subsampling.
        let g = GeometricPerturbation::random(4, 0.05, &mut rng);
        let rho = evaluate_perturbation(&x, &g, &cfg, &mut rng);
        assert!(rho.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = skewed_data(3, 200, 9);
        let cfg = quick_config();
        let a = optimize(&x, &cfg, &mut StdRng::seed_from_u64(10))
            .unwrap()
            .privacy_guarantee;
        let b = optimize(&x, &cfg, &mut StdRng::seed_from_u64(10))
            .unwrap()
            .privacy_guarantee;
        assert_eq!(a, b);
    }

    #[test]
    fn zero_candidates_is_typed_error() {
        let x = skewed_data(2, 50, 11);
        let cfg = OptimizerConfig {
            candidates: 0,
            ..quick_config()
        };
        assert_eq!(
            optimize(&x, &cfg, &mut StdRng::seed_from_u64(12)).unwrap_err(),
            OptimizeError::NoCandidates
        );
    }

    #[test]
    fn empty_dataset_is_typed_error() {
        let cfg = quick_config();
        let err = optimize(&Matrix::zeros(0, 0), &cfg, &mut StdRng::seed_from_u64(13)).unwrap_err();
        assert!(matches!(err, OptimizeError::EmptyDataset { .. }));
        assert_eq!(
            estimate_bound(
                &skewed_data(2, 50, 14),
                &cfg,
                0,
                &mut StdRng::seed_from_u64(15)
            )
            .unwrap_err(),
            OptimizeError::NoRounds
        );
    }

    #[test]
    fn staged_budget_survivor_counts() {
        let b = StagedBudget::default();
        assert_eq!(b.survivors(32), 8);
        assert_eq!(b.survivors(4), 4);
        assert_eq!(b.survivors(1), 1);
        assert_eq!(b.survivors(100), 25);
        let off = StagedBudget {
            enabled: false,
            ..b
        };
        assert_eq!(off.survivors(32), 32);
        // A malformed client budget can never yield zero survivors.
        let degenerate = StagedBudget {
            enabled: true,
            survivor_fraction: 0.0,
            min_survivors: 0,
        };
        assert_eq!(degenerate.survivors(8), 1);
        assert_eq!(degenerate.survivors(0), 0);
        let nan = StagedBudget {
            survivor_fraction: f64::NAN,
            ..degenerate
        };
        assert_eq!(nan.survivors(8), 1);
    }
}
