//! The randomized perturbation optimizer.
//!
//! "A randomized perturbation optimization algorithm is also developed in
//! previous work \[2\] to provide high privacy guarantee with high
//! probability (Figure 2)." The algorithm is a randomized search: sample
//! candidate perturbations, score each by the minimum privacy guarantee
//! under the attack suite, keep the best. The brief then builds on three
//! derived statistics:
//!
//! * the optimized guarantee `ρᵢ` (best candidate of a run),
//! * the empirical bound `b̂ = max{ρ^(i)} over n rounds`,
//! * the optimality rate `O = ρ̄ / b̂`.

use crate::attack::{AttackSuite, AttackerKnowledge};
use rand::seq::SliceRandom;
use rand::Rng;
use sap_linalg::{vecops, Matrix};
use sap_perturb::GeometricPerturbation;

/// Configuration of the randomized optimizer.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Number of random candidates per optimization run.
    pub candidates: usize,
    /// Noise level of every candidate (the protocol uses a common noise
    /// component, so candidates share σ).
    pub noise_sigma: f64,
    /// Known-point budget granted to the distance-inference attack.
    pub known_points: usize,
    /// Maximum number of records used for attack evaluation. Large datasets
    /// are subsampled: the metric is a per-attribute standard deviation, so
    /// a few hundred records estimate it tightly while keeping the inner
    /// loop cheap.
    pub eval_sample: usize,
    /// Include the (expensive) ICA attack in the evaluation suite.
    pub use_ica: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            candidates: 32,
            noise_sigma: 0.05,
            known_points: 6,
            eval_sample: 300,
            use_ica: false,
        }
    }
}

impl OptimizerConfig {
    fn suite(&self) -> AttackSuite {
        if self.use_ica {
            AttackSuite::standard()
        } else {
            AttackSuite::fast()
        }
    }
}

/// Result of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizedPerturbation {
    /// The winning perturbation.
    pub perturbation: GeometricPerturbation,
    /// Its minimum privacy guarantee under the attack suite.
    pub privacy_guarantee: f64,
    /// Guarantee of every candidate, in sample order (for Figure 2's
    /// random-vs-optimized distributions).
    pub history: Vec<f64>,
}

/// Scores one perturbation on (a subsample of) the data: perturbs it and
/// runs the attack suite.
pub fn evaluate_perturbation<R: Rng + ?Sized>(
    x: &Matrix,
    perturbation: &GeometricPerturbation,
    config: &OptimizerConfig,
    rng: &mut R,
) -> f64 {
    let sample = subsample_columns(x, config.eval_sample, rng);
    let knowledge = AttackerKnowledge::worst_case(&sample, config.known_points);
    let (y, _) = perturbation.perturb(&sample, rng);
    config.suite().privacy_guarantee(&sample, &y, &knowledge)
}

/// Runs the randomized optimizer on a `d × N` dataset: draws
/// `config.candidates` random perturbations, keeps the one with the highest
/// minimum privacy guarantee.
///
/// # Panics
///
/// Panics when `config.candidates == 0` or the dataset is empty.
pub fn optimize<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rng: &mut R,
) -> OptimizedPerturbation {
    assert!(config.candidates > 0, "need at least one candidate");
    assert!(x.rows() > 0 && x.cols() > 0, "empty dataset");

    // One evaluation subsample and knowledge bundle shared by the whole run:
    // candidates must be compared on the same ground.
    let sample = subsample_columns(x, config.eval_sample, rng);
    let knowledge = AttackerKnowledge::worst_case(&sample, config.known_points);
    let suite = config.suite();

    let mut best: Option<(GeometricPerturbation, f64)> = None;
    let mut history = Vec::with_capacity(config.candidates);
    for _ in 0..config.candidates {
        let cand = GeometricPerturbation::random(x.rows(), config.noise_sigma, rng);
        let (y, _) = cand.perturb(&sample, rng);
        let rho = suite.privacy_guarantee(&sample, &y, &knowledge);
        history.push(rho);
        if best.as_ref().is_none_or(|(_, b)| rho > *b) {
            best = Some((cand, rho));
        }
    }
    let (perturbation, privacy_guarantee) = best.expect("candidates > 0");
    OptimizedPerturbation {
        perturbation,
        privacy_guarantee,
        history,
    }
}

/// Statistics of `n` independent optimization rounds — the quantities behind
/// the paper's Figures 3 and 4.
#[derive(Debug, Clone)]
pub struct BoundEstimate {
    /// Optimized guarantee of each round, `ρ^(i)`.
    pub round_guarantees: Vec<f64>,
    /// Empirical bound `b̂ = max ρ^(i)`.
    pub bound: f64,
    /// Mean optimized guarantee `ρ̄`.
    pub mean_guarantee: f64,
}

impl BoundEstimate {
    /// The optimality rate `O = ρ̄ / b̂` (paper Section 2). Returns 0 when
    /// the bound is degenerate.
    pub fn optimality_rate(&self) -> f64 {
        if self.bound > 1e-12 {
            self.mean_guarantee / self.bound
        } else {
            0.0
        }
    }
}

/// Runs `rounds` optimization rounds and estimates `b̂` and `O` — the
/// paper's procedure: "The bound bᵢ is usually estimated empirically by
/// looking at the maximum privacy guarantee of n-round optimizations."
///
/// # Panics
///
/// Panics when `rounds == 0`.
pub fn estimate_bound<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rounds: usize,
    rng: &mut R,
) -> BoundEstimate {
    assert!(rounds > 0, "need at least one round");
    let round_guarantees: Vec<f64> = (0..rounds)
        .map(|_| optimize(x, config, rng).privacy_guarantee)
        .collect();
    let bound = vecops::max(&round_guarantees);
    let mean_guarantee = vecops::mean(&round_guarantees);
    BoundEstimate {
        round_guarantees,
        bound,
        mean_guarantee,
    }
}

/// Draws a random perturbation and scores it — the "random perturbations"
/// baseline of Figure 2.
pub fn random_baseline<R: Rng + ?Sized>(
    x: &Matrix,
    config: &OptimizerConfig,
    rng: &mut R,
) -> (GeometricPerturbation, f64) {
    let cand = GeometricPerturbation::random(x.rows(), config.noise_sigma, rng);
    let rho = evaluate_perturbation(x, &cand, config, rng);
    (cand, rho)
}

fn subsample_columns<R: Rng + ?Sized>(x: &Matrix, limit: usize, rng: &mut R) -> Matrix {
    if x.cols() <= limit {
        return x.clone();
    }
    let mut idx: Vec<usize> = (0..x.cols()).collect();
    idx.shuffle(rng);
    idx.truncate(limit);
    let cols: Vec<Vec<f64>> = idx.iter().map(|&c| x.column(c)).collect();
    Matrix::from_columns(&cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn skewed_data(d: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(d, n, |r, _| {
            let u: f64 = rng.random_range(0.0001..1.0);
            (-u.ln()) * 0.2 + 0.1 * r as f64
        })
    }

    fn quick_config() -> OptimizerConfig {
        OptimizerConfig {
            candidates: 8,
            noise_sigma: 0.05,
            known_points: 4,
            eval_sample: 120,
            use_ica: false,
        }
    }

    #[test]
    fn optimized_at_least_matches_every_candidate() {
        let x = skewed_data(4, 300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let opt = optimize(&x, &quick_config(), &mut rng);
        assert_eq!(opt.history.len(), 8);
        let best_in_history = vecops::max(&opt.history);
        assert!((opt.privacy_guarantee - best_in_history).abs() < 1e-12);
        assert!(opt.history.iter().all(|&h| h <= opt.privacy_guarantee));
    }

    #[test]
    fn optimized_beats_mean_random_on_average() {
        // Figure 2's claim, in expectation over a few runs.
        let x = skewed_data(4, 300, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = quick_config();
        let mut opt_sum = 0.0;
        let mut rand_sum = 0.0;
        let runs = 5;
        for _ in 0..runs {
            opt_sum += optimize(&x, &cfg, &mut rng).privacy_guarantee;
            rand_sum += random_baseline(&x, &cfg, &mut rng).1;
        }
        assert!(
            opt_sum / runs as f64 >= rand_sum / runs as f64,
            "optimized mean {} should beat random mean {}",
            opt_sum / runs as f64,
            rand_sum / runs as f64
        );
    }

    #[test]
    fn bound_estimate_consistency() {
        let x = skewed_data(3, 200, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let est = estimate_bound(&x, &quick_config(), 6, &mut rng);
        assert_eq!(est.round_guarantees.len(), 6);
        assert!(est.bound >= est.mean_guarantee);
        let rate = est.optimality_rate();
        assert!(
            (0.0..=1.0 + 1e-12).contains(&rate),
            "optimality rate {rate} outside [0,1]"
        );
        // Bound is the max of the rounds.
        assert!((est.bound - vecops::max(&est.round_guarantees)).abs() < 1e-15);
    }

    #[test]
    fn subsampling_keeps_dimensions() {
        let x = skewed_data(4, 500, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = OptimizerConfig {
            eval_sample: 50,
            ..quick_config()
        };
        // evaluate through the public API; implicitly exercises subsampling.
        let g = GeometricPerturbation::random(4, 0.05, &mut rng);
        let rho = evaluate_perturbation(&x, &g, &cfg, &mut rng);
        assert!(rho.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = skewed_data(3, 200, 9);
        let cfg = quick_config();
        let a = optimize(&x, &cfg, &mut StdRng::seed_from_u64(10)).privacy_guarantee;
        let b = optimize(&x, &cfg, &mut StdRng::seed_from_u64(10)).privacy_guarantee;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn zero_candidates_panics() {
        let x = skewed_data(2, 50, 11);
        let cfg = OptimizerConfig {
            candidates: 0,
            ..quick_config()
        };
        let _ = optimize(&x, &cfg, &mut StdRng::seed_from_u64(12));
    }
}
