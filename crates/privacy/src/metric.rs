//! The multi-column privacy metric.
//!
//! Following Chen & Liu (ICDM'05 / SDM'07), the privacy offered for one
//! attribute is the standard deviation of the attacker's estimation error,
//! normalized by the attribute's own spread so attributes are comparable:
//!
//! ```text
//! ρⱼ = std(Xⱼ − X̂ⱼ) / std(Xⱼ)
//! ```
//!
//! where `Xⱼ` is attribute `j` of the original (normalized) data and `X̂ⱼ`
//! the attacker's best estimate. `ρⱼ = 0` means perfect reconstruction of
//! that attribute; larger is safer. The **minimum privacy guarantee** of a
//! perturbation is the worst attribute under the strongest attack:
//!
//! ```text
//! ρ = min_j min_{attack} ρⱼ(attack)
//! ```
//!
//! The paper evaluates everything through this minimum ("In this paper we by
//! default use the Minimum Privacy Guarantee").

use sap_linalg::{vecops, Matrix};

/// Privacy of a single attribute (row `j` of the `d × N` matrices):
/// `std(error) / std(original)`. Degenerate attributes (zero spread) fall
/// back to the un-normalized error std.
///
/// # Panics
///
/// Panics when shapes differ or `j` is out of range.
pub fn attribute_privacy(original: &Matrix, estimate: &Matrix, j: usize) -> f64 {
    assert_eq!(original.shape(), estimate.shape(), "shape mismatch");
    assert!(j < original.rows(), "attribute index out of range");
    let x = original.row(j);
    let e: Vec<f64> = x
        .iter()
        .zip(estimate.row(j))
        .map(|(&a, &b)| a - b)
        .collect();
    let err_std = vecops::std_dev(&e);
    let x_std = vecops::std_dev(x);
    if x_std > 1e-12 {
        err_std / x_std
    } else {
        err_std
    }
}

/// Minimum privacy guarantee across all attributes for one reconstruction:
/// `min_j ρⱼ`.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn minimum_privacy_guarantee(original: &Matrix, estimate: &Matrix) -> f64 {
    assert_eq!(original.shape(), estimate.shape(), "shape mismatch");
    (0..original.rows())
        .map(|j| attribute_privacy(original, estimate, j))
        .fold(f64::INFINITY, f64::min)
}

/// Mean attribute privacy (the softer aggregate the SDM'07 paper also
/// reports; useful in ablations).
///
/// # Panics
///
/// Panics when shapes differ.
pub fn average_privacy(original: &Matrix, estimate: &Matrix) -> f64 {
    assert_eq!(original.shape(), estimate.shape(), "shape mismatch");
    let d = original.rows() as f64;
    (0..original.rows())
        .map(|j| attribute_privacy(original, estimate, j))
        .sum::<f64>()
        / d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sap_linalg::randn_matrix;

    #[test]
    fn perfect_reconstruction_gives_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = randn_matrix(3, 50, &mut rng);
        assert_eq!(minimum_privacy_guarantee(&x, &x), 0.0);
        assert_eq!(average_privacy(&x, &x), 0.0);
    }

    #[test]
    fn unit_noise_error_gives_unit_privacy() {
        // Estimate = original + noise with std equal to the column std
        // => ρⱼ ≈ 1.
        let mut rng = StdRng::seed_from_u64(2);
        let x = randn_matrix(2, 20_000, &mut rng);
        let noise = randn_matrix(2, 20_000, &mut rng);
        let est = &x + &noise;
        let rho = minimum_privacy_guarantee(&x, &est);
        assert!((rho - 1.0).abs() < 0.05, "rho {rho}");
    }

    #[test]
    fn minimum_picks_worst_attribute() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = randn_matrix(2, 5000, &mut rng);
        // Attribute 0 perfectly known, attribute 1 garbage.
        let mut est = randn_matrix(2, 5000, &mut rng);
        for c in 0..5000 {
            est[(0, c)] = x[(0, c)];
        }
        let rho = minimum_privacy_guarantee(&x, &est);
        assert!(rho < 1e-9, "worst attribute is fully disclosed");
        assert!(average_privacy(&x, &est) > 0.5);
    }

    #[test]
    fn normalization_is_scale_free() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = randn_matrix(2, 4000, &mut rng);
        let noise = randn_matrix(2, 4000, &mut rng).scale(0.5);
        let est = &x + &noise;
        let rho1 = attribute_privacy(&x, &est, 0);
        // Scale both original and estimate by 10: ρ must not change.
        let xs = x.scale(10.0);
        let ests = est.scale(10.0);
        let rho2 = attribute_privacy(&xs, &ests, 0);
        assert!((rho1 - rho2).abs() < 1e-9);
    }

    #[test]
    fn constant_attribute_falls_back_to_raw_error() {
        let x = Matrix::filled(1, 100, 0.7);
        let est = Matrix::filled(1, 100, 0.7);
        assert_eq!(attribute_privacy(&x, &est, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = minimum_privacy_guarantee(&Matrix::zeros(2, 3), &Matrix::zeros(2, 4));
    }
}
