//! Privacy metrics, attack models, perturbation optimization, and the SAP
//! risk model.
//!
//! This crate implements the *evaluation* half of the PODC'07 brief and its
//! SDM'07 companion (reference \[2\]):
//!
//! * [`metric`] — the multi-column **minimum privacy guarantee** `ρ`: the
//!   worst per-attribute normalized deviation between the original data and
//!   the best reconstruction an attacker achieves.
//! * [`attack`] — the attacker suite used to *measure* `ρ`: naive value
//!   estimation, PCA-based rotation reconstruction, ICA-based reconstruction,
//!   and the known-point distance-inference (Procrustes) attack.
//! * [`optimize`] — the randomized perturbation optimizer: sample candidate
//!   rotations, score each under the attack suite, keep the best. This is
//!   what produces the "optimized perturbations give higher privacy
//!   guarantee" distribution of the brief's Figure 2.
//! * [`engine`] — the staged, parallel candidate-evaluation engine beneath
//!   the optimizer: deterministic per-candidate RNG streams, a cheap
//!   attack stage over the whole field, successive-halving pruning, and
//!   the expensive PCA/ICA stage on the survivors (which makes ICA
//!   affordable enough to be on by default).
//! * [`risk`] — the multiparty risk model: source identifiability `πᵢ`,
//!   satisfaction level `sᵢ`, risk of privacy breach (eq. 1), the SAP risk
//!   (eq. 2), and the minimum-parties bound behind Figure 4.
//!
//! # Orientation convention
//!
//! Everything takes data in the paper's `d × N` layout: attributes are rows,
//! records are columns. "Column privacy" in the papers refers to *attribute*
//! privacy, i.e. rows of the `d × N` matrix.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod attack;
pub mod engine;
pub mod metric;
pub mod optimize;
pub mod risk;

pub use attack::{Attack, AttackSuite, AttackerKnowledge};
pub use engine::{EngineOutcome, EngineStats};
pub use metric::{attribute_privacy, minimum_privacy_guarantee};
pub use optimize::{OptimizeError, OptimizedPerturbation, OptimizerConfig, StagedBudget};
pub use risk::{min_parties, risk_of_breach, sap_risk, PrivacyProfile};
