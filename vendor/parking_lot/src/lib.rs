//! Minimal vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks with the panic-free (`Result`-free) guard API the
//! workspace uses. Poisoning is ignored: a poisoned lock yields its inner
//! guard, matching parking_lot's no-poisoning semantics.

#![deny(unsafe_code)]

use std::sync;

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts the lock without blocking; `None` when contended.
    /// Poisoning is ignored like [`Mutex::lock`].
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable whose waits never return `Result`s (poisoning is
/// ignored, matching the lock shims). The guard-consuming call shape
/// follows `std`; the workspace's pooled runtime waits through it.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, ignoring poisoning.
    pub fn wait<'a, T>(&self, guard: sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T> {
        self.0
            .wait(guard)
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Blocks until notified or `deadline` passes, ignoring poisoning.
    /// Callers re-check their predicate (and the clock) on wake, so no
    /// timed-out flag is surfaced.
    pub fn wait_until<'a, T>(
        &self,
        guard: sync::MutexGuard<'a, T>,
        deadline: std::time::Instant,
    ) -> sync::MutexGuard<'a, T> {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        match self.0.wait_timeout(guard, timeout) {
            Ok((guard, _)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        }
    }
}

/// A reader-writer lock whose guards never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_work() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }
}
