//! Minimal vendored stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by this
//! workspace; the shim delegates to `std::sync::mpsc`, whose `Sender` has
//! been `Sync` since Rust 1.72 — sufficient for the in-memory hub's shared
//! route table.

#![deny(unsafe_code)]

/// MPSC channels with the crossbeam surface the workspace uses.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender disconnected.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, failing when the receiver hung up.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value back.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError`] on expiry or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive; `None` when no message is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(7u8).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
                RecvTimeoutError::Timeout
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
                RecvTimeoutError::Disconnected
            );
        }
    }
}
