//! Minimal vendored stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: the [`Rng`] core
//! trait, the [`RngExt`] range-sampling extension, [`SeedableRng`],
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), and
//! [`seq::SliceRandom`] (Fisher–Yates shuffle). All generators are fully
//! deterministic per seed — property tests and the protocol's reproducible
//! experiment figures depend on that.

#![deny(unsafe_code)]

/// A source of random `u64`s.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53-bit resolution).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = if span == 0 || span > u128::from(u64::MAX) {
                    rng.next_u64() as u128
                } else {
                    u128::from(rng.next_u64()) % span
                };
                (self.start as u128).wrapping_add(v) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = if span == 0 {
                    rng.next_u64() as u128
                } else {
                    u128::from(rng.next_u64()) % span
                };
                (lo as u128).wrapping_add(v) as $ty
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = rng.next_f64() as $ty;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = rng.next_f64() as $ty;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Convenience sampling methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]");
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            use crate::SampleRange;
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            use crate::SampleRange;
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.random_range(0..7);
            assert!(n < 7);
            let m: usize = rng.random_range(0..=3);
            assert!(m <= 3);
        }
        let _big: u64 = rng.random_range(0..u64::MAX);
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }
}
