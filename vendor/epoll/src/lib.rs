//! Minimal vendored readiness-polling shim (offline build).
//!
//! The workspace builds with no registry access, so the small slice of
//! `mio`/`polling`-style functionality the reactor transport needs is
//! implemented here directly over raw syscalls: an edge-triggered
//! `epoll(7)` backend on Linux, a portable level-triggered `poll(2)`
//! fallback for other unixes (also selectable at runtime via
//! `SAP_POLLER=poll` so both paths stay tested on Linux), and a
//! pipe-based [`Waker`] for cross-thread wakeups.
//!
//! This is the **only** crate in the workspace that contains `unsafe`
//! code: every other crate (including the reactor itself) denies it, so
//! the syscall surface stays auditable in one file. The API is shaped so
//! callers cannot misuse the raw file descriptors: they hand in borrowed
//! fds of sockets they own and get typed [`Event`]s back.
//!
//! Semantics contract for callers (documented once, relied on by the
//! reactor's state machines):
//!
//! - The epoll backend is **edge-triggered**; [`Poller::modify`] re-arms
//!   delivery if the condition currently holds. The poll backend is
//!   level-triggered. Code that (a) drains reads until `WouldBlock` and
//!   (b) only keeps write interest while it has queued bytes is correct
//!   under both disciplines.
//! - Tokens are caller-chosen `usize` values echoed back verbatim.
//! - Dropping a [`Poller`] closes its OS resources; registered fds stay
//!   owned (and closed) by the caller.

#![deny(missing_docs)]
#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness directions a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd becomes writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness notification, translated out of the OS representation.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration time.
    pub token: usize,
    /// The fd is readable (includes EOF: a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Peer closed its end (`EPOLLHUP`/`EPOLLRDHUP`/`POLLHUP`).
    pub hangup: bool,
    /// Error condition pending on the fd (`EPOLLERR`/`POLLERR`).
    pub error: bool,
}

/// Which OS mechanism a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Linux `epoll(7)`, edge-triggered.
    Epoll,
    /// Portable `poll(2)`, level-triggered, registration set kept in
    /// userspace and rebuilt per wait.
    Poll,
}

impl BackendKind {
    /// Stable lowercase name for logs and bench output.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Epoll => "epoll",
            BackendKind::Poll => "poll",
        }
    }
}

// ---------------------------------------------------------------------------
// Raw syscall surface. Everything unsafe lives below this line.
// ---------------------------------------------------------------------------

mod ffi {
    #![allow(non_camel_case_types)]
    use std::os::raw::{c_int, c_void};

    // epoll_event carries a 32-bit mask plus a 64-bit user datum; on
    // x86-64 the kernel ABI packs it to 12 bytes.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;

        pub fn poll(fds: *mut pollfd, nfds: u64, timeout: c_int) -> c_int;

        #[cfg(target_os = "linux")]
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn pipe(fds: *mut c_int) -> c_int;
        #[cfg(not(target_os = "linux"))]
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;

        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub const SOL_SOCKET: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const SO_SNDBUF: c_int = 7;
    #[cfg(target_os = "linux")]
    pub const SO_RCVBUF: c_int = 8;
    #[cfg(not(target_os = "linux"))]
    pub const SOL_SOCKET: c_int = 0xffff;
    #[cfg(not(target_os = "linux"))]
    pub const SO_SNDBUF: c_int = 0x1001;
    #[cfg(not(target_os = "linux"))]
    pub const SO_RCVBUF: c_int = 0x1002;
}

/// Converts a `-1` syscall return into the thread's `errno` as `io::Error`.
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

fn cvt_len(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret as usize)
    }
}

/// Rounds a timeout up to whole milliseconds for the syscall interface,
/// clamping to the `c_int` range. `None` means wait forever (-1).
fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_nanos().div_ceil(1_000_000);
            if ms > i32::MAX as u128 {
                i32::MAX
            } else {
                ms as i32
            }
        }
    }
}

/// Requests kernel send/receive buffer sizes for a socket (`SO_SNDBUF` /
/// `SO_RCVBUF`). The kernel may clamp the request to its configured
/// maximums (and on Linux doubles the value for bookkeeping); this is a
/// best-effort throughput knob, not a guarantee. Std's `TcpStream` does
/// not expose these options, which is why the syscall lives in this
/// crate's audited unsafe surface.
pub fn set_socket_buffers(fd: RawFd, send_bytes: usize, recv_bytes: usize) -> io::Result<()> {
    for (opt, bytes) in [(ffi::SO_SNDBUF, send_bytes), (ffi::SO_RCVBUF, recv_bytes)] {
        let val = i32::try_from(bytes).unwrap_or(i32::MAX);
        #[allow(unsafe_code)]
        cvt(unsafe {
            ffi::setsockopt(
                fd,
                ffi::SOL_SOCKET,
                opt,
                (&val as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        })?;
    }
    Ok(())
}

const MAX_EVENTS: usize = 256;

#[derive(Debug, Clone, Copy)]
struct PollReg {
    token: usize,
    interest: Interest,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
    },
    Poll {
        regs: HashMap<RawFd, PollReg>,
    },
}

/// A readiness queue: register fds with an [`Interest`] and a token, then
/// [`wait`](Poller::wait) for [`Event`]s.
///
/// All methods take `&mut self`; the owning reactor thread is the only
/// user. Cross-thread wakeups go through [`Waker`], which is `Sync`.
pub struct Poller {
    backend: Backend,
    #[cfg(target_os = "linux")]
    ep_buf: Vec<ffi::epoll_event>,
}

impl Poller {
    /// Opens a poller with the best backend for this platform: epoll on
    /// Linux (unless `SAP_POLLER=poll` forces the fallback), poll(2)
    /// elsewhere.
    pub fn new() -> io::Result<Poller> {
        let force_poll = std::env::var("SAP_POLLER").is_ok_and(|v| v == "poll");
        if force_poll {
            Poller::with_backend(BackendKind::Poll)
        } else {
            #[cfg(target_os = "linux")]
            {
                Poller::with_backend(BackendKind::Epoll)
            }
            #[cfg(not(target_os = "linux"))]
            {
                Poller::with_backend(BackendKind::Poll)
            }
        }
    }

    /// Opens a poller with an explicit backend (tests exercise both on
    /// Linux). Requesting [`BackendKind::Epoll`] off Linux returns
    /// `Unsupported`.
    pub fn with_backend(kind: BackendKind) -> io::Result<Poller> {
        match kind {
            BackendKind::Poll => Ok(Poller {
                backend: Backend::Poll {
                    regs: HashMap::new(),
                },
                #[cfg(target_os = "linux")]
                ep_buf: Vec::new(),
            }),
            #[cfg(target_os = "linux")]
            BackendKind::Epoll => {
                #[allow(unsafe_code)]
                let epfd = cvt(unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) })?;
                Ok(Poller {
                    backend: Backend::Epoll { epfd },
                    ep_buf: vec![ffi::epoll_event { events: 0, data: 0 }; MAX_EVENTS],
                })
            }
            #[cfg(not(target_os = "linux"))]
            BackendKind::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> BackendKind {
        match self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => BackendKind::Epoll,
            Backend::Poll { .. } => BackendKind::Poll,
        }
    }

    /// Registers `fd` for `interest`, tagging events with `token`.
    /// The caller keeps ownership of the fd and must keep it open until
    /// [`deregister`](Poller::deregister) or drop of the poller.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => ep_ctl(*epfd, ffi::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll { regs } => {
                regs.insert(fd, PollReg { token, interest });
                Ok(())
            }
        }
    }

    /// Updates `interest`/`token` for an already registered fd. On the
    /// epoll backend this also re-arms edge delivery if the condition
    /// currently holds.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => ep_ctl(*epfd, ffi::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll { regs } => {
                regs.insert(fd, PollReg { token, interest });
                Ok(())
            }
        }
    }

    /// Removes a registration. Safe to call for fds that were never
    /// registered (reports the OS error on epoll, no-op on poll).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev = ffi::epoll_event { events: 0, data: 0 };
                #[allow(unsafe_code)]
                cvt(unsafe { ffi::epoll_ctl(*epfd, ffi::EPOLL_CTL_DEL, fd, &mut ev) })?;
                Ok(())
            }
            Backend::Poll { regs } => {
                regs.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one event arrives or the timeout elapses,
    /// appending translated events to `events` (which is cleared first).
    /// A signal interruption (`EINTR`) returns `Ok` with zero events so
    /// callers just loop.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let ms = timeout_millis(timeout);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let buf = &mut self.ep_buf;
                #[allow(unsafe_code)]
                let n = unsafe { ffi::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, ms) };
                let n = match cvt(n) {
                    Ok(n) => n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                for raw in buf.iter().take(n) {
                    let mask = { raw.events };
                    let token = { raw.data } as usize;
                    events.push(Event {
                        token,
                        readable: mask & (ffi::EPOLLIN | ffi::EPOLLRDHUP | ffi::EPOLLHUP) != 0,
                        writable: mask & ffi::EPOLLOUT != 0,
                        hangup: mask & (ffi::EPOLLHUP | ffi::EPOLLRDHUP) != 0,
                        error: mask & ffi::EPOLLERR != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { regs } => {
                let mut fds: Vec<ffi::pollfd> = regs
                    .iter()
                    .map(|(&fd, reg)| ffi::pollfd {
                        fd,
                        events: (if reg.interest.read { ffi::POLLIN } else { 0 })
                            | (if reg.interest.write { ffi::POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                #[allow(unsafe_code)]
                let n = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
                match cvt(n) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(()),
                    Err(e) => return Err(e),
                }
                for pfd in &fds {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let Some(reg) = regs.get(&pfd.fd) else {
                        continue;
                    };
                    events.push(Event {
                        token: reg.token,
                        readable: pfd.revents & (ffi::POLLIN | ffi::POLLHUP) != 0,
                        writable: pfd.revents & ffi::POLLOUT != 0,
                        hangup: pfd.revents & ffi::POLLHUP != 0,
                        error: pfd.revents & ffi::POLLERR != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn ep_ctl(epfd: RawFd, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
    let mut mask = ffi::EPOLLET | ffi::EPOLLRDHUP;
    if interest.read {
        mask |= ffi::EPOLLIN;
    }
    if interest.write {
        mask |= ffi::EPOLLOUT;
    }
    let mut ev = ffi::epoll_event {
        events: mask,
        data: token as u64,
    };
    #[allow(unsafe_code)]
    cvt(unsafe { ffi::epoll_ctl(epfd, op, fd, &mut ev) })?;
    Ok(())
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self.backend {
            #[allow(unsafe_code)]
            unsafe {
                ffi::close(epfd)
            };
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend().name())
            .finish()
    }
}

/// Cross-thread wakeup channel: a non-blocking pipe whose read end is
/// registered in the poller. Any thread may call [`wake`](Waker::wake);
/// the reactor drains pending tokens with [`drain`](Waker::drain) when
/// its wait returns with the waker's token.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the pipe and registers its read end under `token`.
    pub fn new(poller: &mut Poller, token: usize) -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        #[cfg(target_os = "linux")]
        {
            #[allow(unsafe_code)]
            cvt(unsafe { ffi::pipe2(fds.as_mut_ptr(), ffi::O_NONBLOCK | ffi::O_CLOEXEC) })?;
        }
        #[cfg(not(target_os = "linux"))]
        {
            const F_SETFL: i32 = 4;
            #[allow(unsafe_code)]
            cvt(unsafe { ffi::pipe(fds.as_mut_ptr()) })?;
            for fd in fds {
                #[allow(unsafe_code)]
                cvt(unsafe { ffi::fcntl(fd, F_SETFL, ffi::O_NONBLOCK) })?;
            }
        }
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        poller.register(waker.read_fd, token, Interest::READ)?;
        Ok(waker)
    }

    /// Makes the poller's next (or current) wait return. Never blocks: if
    /// the pipe is already full the pending byte already guarantees a
    /// wakeup, so the error is ignored.
    pub fn wake(&self) {
        let byte = [1u8];
        #[allow(unsafe_code)]
        unsafe {
            ffi::write(self.write_fd, byte.as_ptr().cast(), 1)
        };
    }

    /// Empties the pipe so the next wait blocks again. Call whenever the
    /// waker's token shows up in an event. Returns how many bytes were
    /// pending (0 is fine: wakeups may coalesce).
    pub fn drain(&self) -> usize {
        let mut total = 0usize;
        let mut buf = [0u8; 64];
        loop {
            #[allow(unsafe_code)]
            let r = unsafe { ffi::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            match cvt_len(r) {
                Ok(0) => break,
                Ok(n) => total += n,
                Err(_) => break,
            }
        }
        total
    }
}

// The pipe fds are only written (wake) or read (drain), both of which are
// atomic syscalls on O_NONBLOCK pipes — safe from any thread.
#[allow(unsafe_code)]
unsafe impl Send for Waker {}
#[allow(unsafe_code)]
unsafe impl Sync for Waker {}

impl Drop for Waker {
    fn drop(&mut self) {
        #[allow(unsafe_code)]
        unsafe {
            ffi::close(self.write_fd);
            ffi::close(self.read_fd);
        }
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn timeout_rounds_up_and_clamps() {
        assert_eq!(timeout_millis(None), -1);
        assert_eq!(timeout_millis(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_millis(Some(Duration::from_micros(1))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_millis(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }

    fn kinds() -> Vec<BackendKind> {
        let mut v = vec![BackendKind::Poll];
        if cfg!(target_os = "linux") {
            v.push(BackendKind::Epoll);
        }
        v
    }

    #[test]
    fn readable_socket_fires_event_on_all_backends() {
        for kind in kinds() {
            let mut poller = Poller::with_backend(kind).expect("poller");
            assert_eq!(poller.backend(), kind);

            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let mut client = TcpStream::connect(addr).expect("connect");
            let (server, _) = listener.accept().expect("accept");
            server.set_nonblocking(true).expect("nonblock");

            poller
                .register(server.as_raw_fd(), 7, Interest::READ)
                .expect("register");

            let mut events = Vec::new();
            // Nothing readable yet.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.iter().all(|e| e.token != 7 || !e.readable));

            client.write_all(b"ping").expect("write");
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            let ev = events.iter().find(|e| e.token == 7).expect("event");
            assert!(ev.readable);

            let mut sink = [0u8; 8];
            let mut s = &server;
            let n = s.read(&mut sink).expect("read");
            assert_eq!(&sink[..n], b"ping");

            poller.deregister(server.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn socket_buffers_can_be_tuned() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        set_socket_buffers(client.as_raw_fd(), 1 << 20, 1 << 20).expect("setsockopt");
        // A bad fd reports the OS error instead of panicking.
        assert!(set_socket_buffers(-1, 4096, 4096).is_err());
    }

    #[test]
    fn hangup_is_reported() {
        for kind in kinds() {
            let mut poller = Poller::with_backend(kind).expect("poller");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let client = TcpStream::connect(addr).expect("connect");
            let (server, _) = listener.accept().expect("accept");
            server.set_nonblocking(true).expect("nonblock");
            poller
                .register(server.as_raw_fd(), 3, Interest::READ)
                .expect("register");

            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            let ev = events.iter().find(|e| e.token == 3).expect("event");
            // EOF must at least look readable (read returns 0); most
            // platforms also flag hangup.
            assert!(ev.readable || ev.hangup);
        }
    }

    #[test]
    fn waker_wakes_a_parked_wait_from_another_thread() {
        for kind in kinds() {
            let mut poller = Poller::with_backend(kind).expect("poller");
            let waker = std::sync::Arc::new(Waker::new(&mut poller, 0).expect("waker"));
            let w2 = std::sync::Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                w2.wake();
            });
            let mut events = Vec::new();
            let start = std::time::Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .expect("wait");
            assert!(start.elapsed() < Duration::from_secs(9), "woke early");
            assert!(events.iter().any(|e| e.token == 0 && e.readable));
            assert!(waker.drain() >= 1);
            // Drained: next wait times out quietly.
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .expect("wait");
            assert!(events.iter().all(|e| e.token != 0));
            t.join().expect("join");
        }
    }

    #[test]
    fn write_interest_toggles() {
        for kind in kinds() {
            let mut poller = Poller::with_backend(kind).expect("poller");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let client = TcpStream::connect(addr).expect("connect");
            let (_server, _) = listener.accept().expect("accept");
            client.set_nonblocking(true).expect("nonblock");

            poller
                .register(client.as_raw_fd(), 11, Interest::BOTH)
                .expect("register");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert!(events.iter().any(|e| e.token == 11 && e.writable));

            // Drop write interest: an idle socket generates no events.
            poller
                .modify(client.as_raw_fd(), 11, Interest::READ)
                .expect("modify");
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .expect("wait");
            assert!(events.iter().all(|e| e.token != 11 || !e.writable));
        }
    }
}
