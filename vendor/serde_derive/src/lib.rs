//! Minimal vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! The offline build has no `syn`/`quote`, so the item is parsed directly
//! from the `proc_macro` token stream and the impls are emitted as strings.
//! Supported shapes — exactly what this workspace derives on:
//!
//! * unit structs, newtype/tuple structs, named-field structs;
//! * enums whose variants are unit, newtype, tuple, or struct-like;
//! * no generics, no lifetimes, no `#[serde(...)]` attributes.
//!
//! Generated deserialization code is positional (`visit_seq`): the codec
//! decides how field names map to positions. The JSON debug codec reorders
//! named fields into declaration order before driving the visitor, so both
//! self-describing and compact formats work against the same derive.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<(String, VariantFields)>),
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Model {
    name: String,
    kind: Kind,
}

/// Derives `serde::ser::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let model = parse_item(input);
    gen_serialize(&model)
        .parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derives `serde::de::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let model = parse_item(input);
    gen_deserialize(&model)
        .parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Model {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);

    let kw = expect_ident(&toks, i);
    i += 1;
    let name = expect_ident(&toks, i);
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is unsupported");
        }
    }

    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde shim derive: unsupported struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g))
            }
            other => panic!("serde shim derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    };

    Model { name, kind }
}

fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: usize) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Parses `{ field: Type, ... }`, returning the field names. Types are
/// skipped with angle-bracket depth tracking so `BTreeMap<K, V>` commas do
/// not end a field early (groups are opaque single tokens, so commas inside
/// parens/brackets are invisible here).
fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, i);
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        let mut angle_depth = 0i64;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of `( Type, Type, ... )` via top-level commas.
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i64;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(g: &Group) -> Vec<(String, VariantFields)> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, i);
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '=' {
                panic!("serde shim derive: explicit discriminants are unsupported");
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(m: &Model) -> String {
    let name = &m.name;
    let body = match &m.kind {
        Kind::UnitStruct => {
            format!("::serde::ser::Serializer::serialize_unit_struct(serializer, \"{name}\")")
        }
        Kind::TupleStruct(1) => format!(
            "::serde::ser::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)"
        ),
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let mut state = ::serde::ser::Serializer::serialize_tuple_struct(serializer, \"{name}\", {n}usize)?;\n"
            );
            for idx in 0..*n {
                s += &format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut state, &self.{idx})?;\n"
                );
            }
            s += "::serde::ser::SerializeTupleStruct::end(state)";
            s
        }
        Kind::NamedStruct(fields) => {
            let n = fields.len();
            let mut s = format!(
                "let mut state = ::serde::ser::Serializer::serialize_struct(serializer, \"{name}\", {n}usize)?;\n"
            );
            for f in fields {
                s += &format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut state, \"{f}\", &self.{f})?;\n"
                );
            }
            s += "::serde::ser::SerializeStruct::end(state)";
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, (v, fields)) in variants.iter().enumerate() {
                match fields {
                    VariantFields::Unit => {
                        arms += &format!(
                            "{name}::{v} => ::serde::ser::Serializer::serialize_unit_variant(serializer, \"{name}\", {idx}u32, \"{v}\"),\n"
                        );
                    }
                    VariantFields::Tuple(1) => {
                        arms += &format!(
                            "{name}::{v}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(serializer, \"{name}\", {idx}u32, \"{v}\", __f0),\n"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{v}({}) => {{\nlet mut state = ::serde::ser::Serializer::serialize_tuple_variant(serializer, \"{name}\", {idx}u32, \"{v}\", {n}usize)?;\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm += &format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut state, {b})?;\n"
                            );
                        }
                        arm += "::serde::ser::SerializeTupleVariant::end(state)\n},\n";
                        arms += &arm;
                    }
                    VariantFields::Named(fs) => {
                        let n = fs.len();
                        let mut arm = format!(
                            "{name}::{v} {{ {} }} => {{\nlet mut state = ::serde::ser::Serializer::serialize_struct_variant(serializer, \"{name}\", {idx}u32, \"{v}\", {n}usize)?;\n",
                            fs.join(", ")
                        );
                        for f in fs {
                            arm += &format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut state, \"{f}\", {f})?;\n"
                            );
                        }
                        arm += "::serde::ser::SerializeStructVariant::end(state)\n},\n";
                        arms += &arm;
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn next_element_expr(err_ty: &str, what: &str) -> String {
    format!(
        "match ::serde::de::SeqAccess::next_element(&mut seq)? {{\n\
             ::core::option::Option::Some(__value) => __value,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(<{err_ty} as ::serde::de::Error>::custom(\"missing {what}\")),\n\
         }}"
    )
}

fn gen_deserialize(m: &Model) -> String {
    let name = &m.name;
    let body = match &m.kind {
        Kind::UnitStruct => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn visit_unit<E: ::serde::de::Error>(self) -> ::core::result::Result<{name}, E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}\n\
             }}\n\
             ::serde::de::Deserializer::deserialize_unit_struct(deserializer, \"{name}\", __Visitor)"
        ),
        Kind::TupleStruct(1) => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn visit_newtype_struct<D2: ::serde::de::Deserializer<'de>>(self, d: D2) -> ::core::result::Result<{name}, D2::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(d)?))\n\
                 }}\n\
                 fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A) -> ::core::result::Result<{name}, A::Error> {{\n\
                     ::core::result::Result::Ok({name}({}))\n\
                 }}\n\
             }}\n\
             ::serde::de::Deserializer::deserialize_newtype_struct(deserializer, \"{name}\", __Visitor)",
            next_element_expr("A::Error", "newtype field"),
        ),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| next_element_expr("A::Error", &format!("tuple field {k}")))
                .collect();
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A) -> ::core::result::Result<{name}, A::Error> {{\n\
                         ::core::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_tuple_struct(deserializer, \"{name}\", {n}usize, __Visitor)",
                elems.join(", "),
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {}", next_element_expr("A::Error", &format!("field `{f}`"))))
                .collect();
            let field_names: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A) -> ::core::result::Result<{name}, A::Error> {{\n\
                         ::core::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_struct(deserializer, \"{name}\", &[{}], __Visitor)",
                inits.join(", "),
                field_names.join(", "),
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, (v, fields)) in variants.iter().enumerate() {
                match fields {
                    VariantFields::Unit => {
                        arms += &format!(
                            "{idx}u32 => {{ ::serde::de::VariantAccess::unit_variant(__variant)?; ::core::result::Result::Ok({name}::{v}) }}\n"
                        );
                    }
                    VariantFields::Tuple(1) => {
                        arms += &format!(
                            "{idx}u32 => ::core::result::Result::Ok({name}::{v}(::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| next_element_expr("A2::Error", &format!("tuple field {k}")))
                            .collect();
                        arms += &format!(
                            "{idx}u32 => {{\n\
                             struct __TupleVisitor{idx};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __TupleVisitor{idx} {{\n\
                                 type Value = {name};\n\
                                 fn visit_seq<A2: ::serde::de::SeqAccess<'de>>(self, mut seq: A2) -> ::core::result::Result<{name}, A2::Error> {{\n\
                                     ::core::result::Result::Ok({name}::{v}({}))\n\
                                 }}\n\
                             }}\n\
                             ::serde::de::VariantAccess::tuple_variant(__variant, {n}usize, __TupleVisitor{idx})\n\
                             }}\n",
                            elems.join(", "),
                        );
                    }
                    VariantFields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: {}",
                                    next_element_expr("A2::Error", &format!("field `{f}`"))
                                )
                            })
                            .collect();
                        let field_names: Vec<String> =
                            fs.iter().map(|f| format!("\"{f}\"")).collect();
                        arms += &format!(
                            "{idx}u32 => {{\n\
                             struct __StructVisitor{idx};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __StructVisitor{idx} {{\n\
                                 type Value = {name};\n\
                                 fn visit_seq<A2: ::serde::de::SeqAccess<'de>>(self, mut seq: A2) -> ::core::result::Result<{name}, A2::Error> {{\n\
                                     ::core::result::Result::Ok({name}::{v} {{ {} }})\n\
                                 }}\n\
                             }}\n\
                             ::serde::de::VariantAccess::struct_variant(__variant, &[{}], __StructVisitor{idx})\n\
                             }}\n",
                            inits.join(", "),
                            field_names.join(", "),
                        );
                    }
                }
            }
            let variant_names: Vec<String> =
                variants.iter().map(|(v, _)| format!("\"{v}\"")).collect();
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn visit_enum<A: ::serde::de::EnumAccess<'de>>(self, __access: A) -> ::core::result::Result<{name}, A::Error> {{\n\
                         let (__idx, __variant): (u32, _) = ::serde::de::EnumAccess::variant(__access)?;\n\
                         match __idx {{\n\
                             {arms}\n\
                             _ => ::core::result::Result::Err(<A::Error as ::serde::de::Error>::custom(\"invalid variant index\")),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_enum(deserializer, \"{name}\", &[{}], __Visitor)",
                variant_names.join(", "),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D) -> ::core::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
