//! Minimal vendored stand-in for the `bytes` crate.
//!
//! The workspace builds offline, so the handful of `bytes` APIs the
//! transport layer uses are implemented here: a cheaply clonable,
//! reference-counted, immutable byte buffer with zero-copy slicing.
//! `Bytes::slice` shares the underlying allocation, which is what the
//! chunked framing layer relies on to split one encoded message into many
//! frames without copying.

#![deny(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied once; this shim has no borrow variant).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the same allocation (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Recovers the backing `Vec<u8>` without copying, when this handle
    /// is the sole owner of the allocation and views all of it.
    ///
    /// Returns the buffer back as `Err` otherwise (other clones alive,
    /// or this handle is a sub-slice). Buffer pools use this to recycle
    /// frame allocations once the last reference drops.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        if self.start != 0 || self.end != self.data.len() {
            return Err(self);
        }
        let Bytes { data, start, end } = self;
        match Arc::try_unwrap(data) {
            Ok(v) => Ok(v),
            Err(data) => Err(Bytes { data, start, end }),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(Arc::strong_count(&b.data), 2);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn try_into_vec_requires_sole_full_ownership() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let clone = b.clone();
        let b = b.try_into_vec().expect_err("clone alive");
        drop(clone);
        let sub = b.slice(1..);
        let sub = sub.try_into_vec().expect_err("sub-slice");
        assert_eq!(&sub[..], &[2, 3]);
        drop(sub);
        assert_eq!(b.try_into_vec().expect("sole owner"), vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_eq() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"ab"), Bytes::copy_from_slice(b"ab"));
    }
}
