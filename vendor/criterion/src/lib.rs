//! Minimal vendored benchmark harness with a criterion-shaped API.
//!
//! Implements the subset the workspace's benches use: `criterion_group!`,
//! `criterion_main!`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `Throughput`, and `sample_size`.
//! Timing is a calibrated batch measurement (median of samples), printed
//! per bench; set `CRITERION_JSON=<path>` to also append one JSON line per
//! bench for machine consumption.

#![deny(unsafe_code)]

use std::hint::black_box as hint_black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration annotation, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Runs one benchmark body repeatedly and records the per-iteration time.
pub struct Bencher {
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration batch, then takes samples and
    /// keeps the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            hint_black_box(f());
        }
        // Calibrate batch size to ≥ ~5 ms.
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                hint_black_box(f());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
        }
        // Samples (bounded so huge sample_size stays fast in this shim).
        let samples = self.sample_size.clamp(3, 15);
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        times.push(elapsed.as_secs_f64() * 1e9 / batch as f64);
        for _ in 1..samples {
            let start = Instant::now();
            for _ in 0..batch {
                hint_black_box(f());
            }
            times.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        times.sort_by(f64::total_cmp);
        self.ns_per_iter = times[times.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benches with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.id, b.ns_per_iter);
        self
    }

    /// Benches a closure against one input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.id, b.ns_per_iter);
        self
    }

    /// Ends the group (reporting is eager; this is for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, ns: f64) {
        let full = format!("{}/{}", self.name, id);
        let thr = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>8.1} MiB/s",
                    n as f64 / (ns * 1e-9) / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>8.1} Melem/s", n as f64 / (ns * 1e-9) / 1e6)
            }
            None => String::new(),
        };
        println!("{full:<56} {ns:>14.1} ns/iter{thr}");
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let line = match self.throughput {
                Some(Throughput::Bytes(n)) => {
                    format!("{{\"bench\":\"{full}\",\"ns_per_iter\":{ns:.1},\"bytes\":{n}}}\n")
                }
                Some(Throughput::Elements(n)) => {
                    format!("{{\"bench\":\"{full}\",\"ns_per_iter\":{ns:.1},\"elements\":{n}}}\n")
                }
                None => format!("{{\"bench\":\"{full}\",\"ns_per_iter\":{ns:.1}}}\n"),
            };
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = file.write_all(line.as_bytes());
            }
        }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benches a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
