//! Minimal vendored stand-in for the `serde` data model.
//!
//! The workspace builds offline, so the subset of serde's serializer /
//! deserializer contract that the wire and JSON codecs plus the derive
//! macro need is implemented here. The trait-method vocabulary mirrors real
//! serde (same names, same shapes) so codec code written against this shim
//! reads exactly like serde code — but only the surface this repository
//! exercises exists: no `i128`, no borrowed-lifetime zoo, no
//! `serde(attr)` customization.

#![deny(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros, re-exported under the same names as the traits (macro and
// type namespaces are distinct, mirroring real serde's `derive` feature).
pub use serde_derive::{Deserialize, Serialize};
