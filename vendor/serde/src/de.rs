//! The deserialization half of the data model.

use std::fmt::Display;
use std::marker::PhantomData;

/// Error type contract for deserializers.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can deserialize itself from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's error.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable from any lifetime (owns all its data).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful deserialization entry point (the seed form).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserializes using the seed.
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's error.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

macro_rules! visit_default {
    ($($method:ident($ty:ty) -> $what:expr;)*) => {$(
        /// Visits one input shape; the default rejects it.
        ///
        /// # Errors
        ///
        /// The default implementation always errors with a type mismatch.
        fn $method<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
            Err(E::custom(concat!("unexpected ", $what)))
        }
    )*};
}

/// Receives the value a [`Deserializer`] found in its input.
pub trait Visitor<'de>: Sized {
    /// The value this visitor produces.
    type Value;

    visit_default! {
        visit_bool(bool) -> "bool";
        visit_i8(i8) -> "i8";
        visit_i16(i16) -> "i16";
        visit_i32(i32) -> "i32";
        visit_i64(i64) -> "i64";
        visit_u8(u8) -> "u8";
        visit_u16(u16) -> "u16";
        visit_u32(u32) -> "u32";
        visit_u64(u64) -> "u64";
        visit_f32(f32) -> "f32";
        visit_f64(f64) -> "f64";
        visit_char(char) -> "char";
    }

    /// Visits a borrowed string.
    ///
    /// # Errors
    ///
    /// The default rejects strings.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::custom("unexpected string"))
    }

    /// Visits a string borrowed from the input itself.
    ///
    /// # Errors
    ///
    /// As [`Visitor::visit_str`].
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visits an owned string.
    ///
    /// # Errors
    ///
    /// As [`Visitor::visit_str`].
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits borrowed bytes.
    ///
    /// # Errors
    ///
    /// The default rejects bytes.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom("unexpected bytes"))
    }

    /// Visits bytes borrowed from the input itself.
    ///
    /// # Errors
    ///
    /// As [`Visitor::visit_bytes`].
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visits an owned byte buffer.
    ///
    /// # Errors
    ///
    /// As [`Visitor::visit_bytes`].
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visits a missing optional value.
    ///
    /// # Errors
    ///
    /// The default rejects options.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }

    /// Visits a present optional value.
    ///
    /// # Errors
    ///
    /// The default rejects options.
    fn visit_some<D: Deserializer<'de>>(self, _d: D) -> Result<Self::Value, D::Error> {
        Err(<D::Error as Error>::custom("unexpected some"))
    }

    /// Visits a unit value.
    ///
    /// # Errors
    ///
    /// The default rejects unit.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }

    /// Visits a newtype struct.
    ///
    /// # Errors
    ///
    /// The default rejects newtype structs.
    fn visit_newtype_struct<D: Deserializer<'de>>(self, _d: D) -> Result<Self::Value, D::Error> {
        Err(<D::Error as Error>::custom("unexpected newtype struct"))
    }

    /// Visits a sequence.
    ///
    /// # Errors
    ///
    /// The default rejects sequences.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(<A::Error as Error>::custom("unexpected sequence"))
    }

    /// Visits a map.
    ///
    /// # Errors
    ///
    /// The default rejects maps.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(<A::Error as Error>::custom("unexpected map"))
    }

    /// Visits an enum.
    ///
    /// # Errors
    ///
    /// The default rejects enums.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(<A::Error as Error>::custom("unexpected enum"))
    }
}

/// The format side of deserialization.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserializes whatever the input holds (self-describing formats only).
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a borrowed string.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed bytes.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a sequence.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-length tuple.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct-field or enum-variant identifier.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips over whatever value comes next.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserializes the next element with a seed.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserializes the next key with a seed.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the next value with a seed.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Payload accessor produced alongside the variant identifier.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Identifies the variant with a seed.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Identifies the variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes a unit variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant payload with a seed.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a newtype variant payload.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant payload.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant payload.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Trivial deserializers wrapping already-decoded values.
pub mod value {
    use super::{Deserializer, Error, Visitor};
    use std::marker::PhantomData;

    /// A deserializer holding one already-decoded `u32` (used for enum
    /// variant indices).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        /// Wraps a value.
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_u32 {
        ($($method:ident)*) => {$(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u32(self.value)
            }
        )*};
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_u32! {
            deserialize_any deserialize_u8 deserialize_u16 deserialize_u32
            deserialize_u64 deserialize_i8 deserialize_i16 deserialize_i32
            deserialize_i64 deserialize_identifier deserialize_ignored_any
        }

        fn deserialize_bool<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: bool unsupported"))
        }
        fn deserialize_f32<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: f32 unsupported"))
        }
        fn deserialize_f64<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: f64 unsupported"))
        }
        fn deserialize_char<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: char unsupported"))
        }
        fn deserialize_str<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: str unsupported"))
        }
        fn deserialize_string<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: string unsupported"))
        }
        fn deserialize_bytes<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: bytes unsupported"))
        }
        fn deserialize_byte_buf<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: byte buf unsupported"))
        }
        fn deserialize_option<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: option unsupported"))
        }
        fn deserialize_unit<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: unit unsupported"))
        }
        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _v: V,
        ) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: unit struct unsupported"))
        }
        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _v: V,
        ) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: newtype unsupported"))
        }
        fn deserialize_seq<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: seq unsupported"))
        }
        fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: tuple unsupported"))
        }
        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            _v: V,
        ) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: tuple struct unsupported"))
        }
        fn deserialize_map<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: map unsupported"))
        }
        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            _v: V,
        ) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: struct unsupported"))
        }
        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            _v: V,
        ) -> Result<V::Value, E> {
            Err(E::custom("u32 deserializer: enum unsupported"))
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types used in the workspace.
// ---------------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($ty:ty, $deser:ident, $visit:ident;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimitiveVisitor;
                impl<'de> Visitor<'de> for PrimitiveVisitor {
                    type Value = $ty;
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$deser(PrimitiveVisitor)
            }
        }
    )*};
}

primitive_deserialize! {
    bool, deserialize_bool, visit_bool;
    i8, deserialize_i8, visit_i8;
    i16, deserialize_i16, visit_i16;
    i32, deserialize_i32, visit_i32;
    i64, deserialize_i64, visit_i64;
    u8, deserialize_u8, visit_u8;
    u16, deserialize_u16, visit_u16;
    u32, deserialize_u32, visit_u32;
    u64, deserialize_u64, visit_u64;
    f32, deserialize_f32, visit_f32;
    f64, deserialize_f64, visit_f64;
    char, deserialize_char, visit_char;
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($len:expr => $($name:ident),+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    #[allow(non_snake_case)]
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        $(
                            let $name = seq
                                .next_element()?
                                .ok_or_else(|| <Acc::Error as Error>::custom("tuple too short"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    };
}

tuple_deserialize!(1 => A);
tuple_deserialize!(2 => A, B);
tuple_deserialize!(3 => A, B, C);
tuple_deserialize!(4 => A, B, C, D);

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BTreeVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for BTreeVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(k) = map.next_key()? {
                    let v = map.next_value()?;
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(BTreeVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct HashVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for HashVisitor<K, V, H>
        where
            K: Deserialize<'de> + std::hash::Hash + Eq,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_hasher(H::default());
                while let Some(k) = map.next_key()? {
                    let v = map.next_value()?;
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(HashVisitor(PhantomData))
    }
}
