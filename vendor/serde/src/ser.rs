//! The serialization half of the data model.

use std::fmt::Display;

/// Error type contract for serializers.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can serialize itself into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The driver for one serialization: the format side of the data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Compound serializer for sequences.
pub trait SerializeSeq {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuples.
pub trait SerializeTuple {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuple structs.
pub trait SerializeTupleStruct {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuple enum variants.
pub trait SerializeTupleVariant {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for maps.
pub trait SerializeMap {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one key.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for structs.
pub trait SerializeStruct {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for struct enum variants.
pub trait SerializeStructVariant {
    /// Output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// An uninstantiable compound serializer, for serializers that reject all
/// aggregates (e.g. map-key serializers).
pub struct Impossible<Ok, Error> {
    void: Void,
    marker: std::marker::PhantomData<(Ok, Error)>,
}

enum Void {}

macro_rules! impossible_impl {
    ($trait:ident, $method:ident $(, $key:ident)?) => {
        impl<Ok, E: Error> $trait for Impossible<Ok, E> {
            type Ok = Ok;
            type Error = E;
            fn $method<T: ?Sized + Serialize>(
                &mut self,
                $($key: &'static str,)?
                _value: &T,
            ) -> Result<(), E> {
                match self.void {}
            }
            fn end(self) -> Result<Ok, E> {
                match self.void {}
            }
        }
    };
}

impossible_impl!(SerializeSeq, serialize_element);
impossible_impl!(SerializeTuple, serialize_element);
impossible_impl!(SerializeTupleStruct, serialize_field);
impossible_impl!(SerializeTupleVariant, serialize_field);

impl<Ok, E: Error> SerializeMap for Impossible<Ok, E> {
    type Ok = Ok;
    type Error = E;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, _key: &T) -> Result<(), E> {
        match self.void {}
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, _value: &T) -> Result<(), E> {
        match self.void {}
    }
    fn end(self) -> Result<Ok, E> {
        match self.void {}
    }
}

impl<Ok, E: Error> SerializeStruct for Impossible<Ok, E> {
    type Ok = Ok;
    type Error = E;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        _value: &T,
    ) -> Result<(), E> {
        match self.void {}
    }
    fn end(self) -> Result<Ok, E> {
        match self.void {}
    }
}

impl<Ok, E: Error> SerializeStructVariant for Impossible<Ok, E> {
    type Ok = Ok;
    type Error = E;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        _value: &T,
    ) -> Result<(), E> {
        match self.void {}
    }
    fn end(self) -> Result<Ok, E> {
        match self.void {}
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types used in the workspace.
// ---------------------------------------------------------------------------

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => serializer.serialize_some(v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! tuple_serialize {
    ($len:expr => $(($idx:tt $name:ident)),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut t = serializer.serialize_tuple($len)?;
                $(SerializeTuple::serialize_element(&mut t, &self.$idx)?;)+
                t.end()
            }
        }
    };
}

tuple_serialize!(1 => (0 A));
tuple_serialize!(2 => (0 A), (1 B));
tuple_serialize!(3 => (0 A), (1 B), (2 C));
tuple_serialize!(4 => (0 A), (1 B), (2 C), (3 D));

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}
