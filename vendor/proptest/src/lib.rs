//! Minimal vendored property-testing harness with a proptest-shaped API.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range strategies
//! (`1usize..8`, `0.05f64..2.0`), [`any`] for primitives, and the
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated from a
//! deterministic per-test seed (FNV of the test name), so failures
//! reproduce; there is no shrinking.

#![deny(unsafe_code)]

use std::marker::PhantomData;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a), so every test has a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = u128::from(rng.next_u64()) % span;
                (self.start as u128).wrapping_add(v) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = if span == 0 { u128::from(rng.next_u64()) } else { u128::from(rng.next_u64()) % span };
                (lo as u128).wrapping_add(v) as $ty
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly log-uniform over magnitudes — adequate for the
        // numeric property tests here.
        let mag = rng.next_f64() * 20.0 - 10.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        if !(__lhs == __rhs) {
            return ::core::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?}",
                __lhs, __rhs
            ));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property `{}` failed on case {}: {}",
                            stringify!($name), __case, __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(d in 1usize..8, x in 0.25f64..0.75) {
            prop_assert!((1..8).contains(&d));
            prop_assert!((0.25..0.75).contains(&x), "x = {x}");
        }

        #[test]
        fn any_u64_draws_are_independent(a in any::<u64>(), b in any::<u64>()) {
            // Two draws within one case come from one advancing stream —
            // a collision would mean the stream is stuck.
            prop_assert!(a != b, "stream repeated {a}");
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
